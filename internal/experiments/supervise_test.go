package experiments

import (
	"context"
	"errors"
	"regexp"
	"runtime"
	"strings"
	"testing"
	"time"

	"rarpred/internal/faultsim"
	"rarpred/internal/runerr"
	"rarpred/internal/store"
	"rarpred/internal/supervise"
)

// Supervision integration tests: the supervisor wired through
// Options.Supervise must detect injected stalls at the simulators' real
// poll boundaries, heal what is healable, annotate what is not, and
// leave no goroutine or pinned stream behind. Sizes are unique per test
// (see resilience_test.go) so the shared trace cache cannot mask a
// fault.

// waitGoroutines asserts the goroutine count returns to its baseline.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

func assertNoPins(t *testing.T) {
	t.Helper()
	if pinned := TraceCache().Stats().Pinned; pinned != 0 {
		t.Errorf("trace cache still pins %d streams", pinned)
	}
}

// TestSupervisedStallHealsByteIdentical: a transiently stalled cell is
// preempted by the watchdog, retried, and the suite's rendered output is
// byte-identical to a never-stalled run — the healing leaves no trace in
// the results.
func TestSupervisedStallHealsByteIdentical(t *testing.T) {
	defer faultsim.Reset()
	before := runtime.NumGoroutine()
	opt := subset("go", "tom")
	opt.Size = 25
	opt.MaxInsts = 1_000_000 // ample for these sizes; distinct cache keys from default runs
	faultsim.Inject(name(t, "go"), faultsim.Fault{Kind: faultsim.Stall, Times: 1})

	sup := supervise.New(supervise.Config{
		StallTimeout: time.Second,
		MaxRetries:   2,
		Sleep:        func(time.Duration) {},
	})
	opt.Supervise = sup
	e, ok := ByID("fig2")
	if !ok {
		t.Fatal("fig2 not registered")
	}
	out, _ := renderSuite(t, opt, []Experiment{e})
	sup.Close()

	sum := sup.Summary()
	if sum.StallsDetected < 1 {
		t.Errorf("watchdog detected %d stalls, want >= 1", sum.StallsDetected)
	}
	if sum.Retries < 1 {
		t.Errorf("supervisor retried %d times, want >= 1", sum.Retries)
	}
	if strings.Contains(out, "!!") {
		t.Fatalf("healed run still carries failure annotations:\n%s", out)
	}

	// The same suite, unfaulted and unsupervised, must render the exact
	// same bytes.
	faultsim.Reset()
	clean := subset("go", "tom")
	clean.Size = 25
	clean.MaxInsts = 1_000_000
	cleanOut, _ := renderSuite(t, clean, []Experiment{e})
	if out != cleanOut {
		t.Errorf("healed output diverges from clean run:\n--- healed ---\n%s--- clean ---\n%s", out, cleanOut)
	}
	waitGoroutines(t, before)
	assertNoPins(t)
}

// TestSupervisedPanicHealedByRetry: a transient panic that would leave a
// partial result in an unsupervised run is healed by the retry budget.
func TestSupervisedPanicHealedByRetry(t *testing.T) {
	defer faultsim.Reset()
	opt := subset("vor", "com")
	opt.Size = 28
	faultsim.Inject(name(t, "vor"), faultsim.Fault{Kind: faultsim.Panic, Times: 1})

	sup := supervise.New(supervise.Config{MaxRetries: 2, Sleep: func(time.Duration) {}})
	defer sup.Close()
	opt.Supervise = sup
	e, _ := ByID("table51")
	out, _ := renderSuite(t, opt, []Experiment{e})
	if strings.Contains(out, "!!") {
		t.Fatalf("retry did not heal the transient panic:\n%s", out)
	}
	if got := sup.Summary().Retries; got < 1 {
		t.Errorf("retries = %d, want >= 1", got)
	}
	assertNoPins(t)
}

// TestSupervisedLivelockAbandonedAndAnnotated: a cell wedged beyond
// cancellation (Livelock ignores its context) is preempted, its worker
// abandoned after the grace period, and — since every retry joins the
// still-wedged recording — the cell exhausts its budget and surfaces as
// a typed, elapsed-annotated ErrStalled while the rest of the suite
// completes. faultsim.Reset then releases the wedged goroutine, so
// nothing leaks past test cleanup.
func TestSupervisedLivelockAbandonedAndAnnotated(t *testing.T) {
	defer faultsim.Reset()
	before := runtime.NumGoroutine()
	opt := subset("go", "tom")
	opt.Size = 26
	opt.MaxInsts = 1_000_000
	faultsim.Inject(name(t, "go"), faultsim.Fault{Kind: faultsim.Livelock, Times: 1})

	sup := supervise.New(supervise.Config{
		StallTimeout: time.Second,
		Grace:        50 * time.Millisecond,
		MaxRetries:   1,
		Sleep:        func(time.Duration) {},
	})
	opt.Supervise = sup
	e, _ := ByID("fig2")

	var out strings.Builder
	RunSuite(opt, []Experiment{e}, func(item SuiteItem) bool {
		if item.Err != nil {
			t.Fatalf("suite hard-failed instead of isolating the livelock: %v", item.Err)
		}
		out.WriteString(item.Result.String())
		return true
	})
	sup.Close()

	sum := sup.Summary()
	if sum.AbandonedWorkers < 1 {
		t.Errorf("abandoned workers = %d, want >= 1 (livelock ignores cancel)", sum.AbandonedWorkers)
	}
	if sum.StallsDetected < 2 {
		t.Errorf("stalls = %d, want >= 2 (initial attempt and its retry)", sum.StallsDetected)
	}
	rendered := out.String()
	if !strings.Contains(rendered, "partial result") || !strings.Contains(rendered, name(t, "go")) {
		t.Fatalf("livelocked cell not annotated as a partial failure:\n%s", rendered)
	}
	// Satellite: the !! annotation must report elapsed vs configured time.
	stallLine := regexp.MustCompile(`cell stalled \(no heartbeat for [0-9.]+s > 1s stall-timeout\)`)
	if !stallLine.MatchString(rendered) {
		t.Errorf("stall annotation lacks elapsed-vs-configured time:\n%s", rendered)
	}
	if !regexp.MustCompile(`(?m)^tom\b`).MatchString(rendered) {
		t.Errorf("surviving workload missing from output:\n%s", rendered)
	}

	faultsim.Reset() // releases the wedged hook
	waitGoroutines(t, before)
	assertNoPins(t)
}

// TestDeadlineAnnotationReportsElapsed: the per-workload deadline error
// carries elapsed-vs-configured time, so a !! line distinguishes a
// near-miss from a hard hang.
func TestDeadlineAnnotationReportsElapsed(t *testing.T) {
	defer faultsim.Reset()
	opt := subset("go", "tom")
	opt.Size = 12
	opt.MaxInsts = 1_000_000
	opt.WorkloadTimeout = time.Second
	faultsim.Inject(name(t, "go"), faultsim.Fault{Kind: faultsim.Stall})

	res, err := runTable51(opt)
	if err != nil {
		t.Fatalf("deadline aborted the suite: %v", err)
	}
	p, ok := res.(*PartialResult)
	if !ok {
		t.Fatalf("result is %T, want *PartialResult", res)
	}
	f := p.Fails[0]
	if !errors.Is(f, runerr.ErrDeadline) {
		t.Fatalf("failure %v is not ErrDeadline", f)
	}
	want := regexp.MustCompile(`deadline exceeded \([0-9.]+s > 1s\)`)
	if !want.MatchString(f.Error()) {
		t.Errorf("deadline error lacks elapsed-vs-configured annotation: %v", f)
	}
	if !want.MatchString(p.String()) {
		t.Errorf("rendered !! line lacks the annotation:\n%s", p.String())
	}
}

// TestSupervisedMemoryBackpressure: an injected memory hog pushes the
// default usage probe over the high watermark — admission pauses and the
// live trace cache's budget is squeezed; clearing the hog restores both.
func TestSupervisedMemoryBackpressure(t *testing.T) {
	defer faultsim.Reset()
	cache := TraceCache()
	origBudget := cache.Budget()

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	high := int64(ms.HeapAlloc) + 512<<20

	sup := supervise.New(supervise.Config{})
	sup.StartMemWatch(supervise.MemConfig{
		HighWater: high,
		Interval:  time.Millisecond,
	}, cache)

	faultsim.InjectMemHog(2 << 30) // 2 GiB phantom: usage sails past high
	waitCond(t, "admission pause", func() bool { return sup.Summary().AdmissionPauses >= 1 })
	waitCond(t, "budget squeeze", func() bool { return sup.Summary().MemSqueezes >= 1 })
	if got := cache.Budget(); got == origBudget {
		t.Errorf("cache budget not squeezed (still %d)", got)
	}

	faultsim.InjectMemHog(0) // pressure gone: usage back to the real heap
	waitCond(t, "budget restore", func() bool { return cache.Budget() == origBudget })
	waitCond(t, "admission resume", func() bool {
		ctx, cancel := contextWithTimeout(10 * time.Millisecond)
		defer cancel()
		return sup.Admit(ctx) == nil
	})
	sup.Close()
	if got := cache.Budget(); got != origBudget {
		t.Errorf("budget after Close = %d, want %d", got, origBudget)
	}
}

// TestSupervisedChaosSoak is the deterministic chaos drill: a transient
// stall, a transient panic, a hard livelock, and a persistently failing
// disk tier all at once, under supervision. The suite must complete with
// the two transient faults healed, the livelock isolated and annotated,
// the store breaker open, and no goroutine or pin left after cleanup.
func TestSupervisedChaosSoak(t *testing.T) {
	defer faultsim.Reset()
	before := runtime.NumGoroutine()

	// A store tier on a persistently failing disk: every artifact write
	// faults, so the breaker must open and the suite must finish on the
	// in-memory tier alone.
	breaker := &store.Breaker{Threshold: 2, Cooldown: time.Hour}
	st, err := store.Open(t.TempDir(),
		store.WithBreaker(breaker),
		store.WithFS(store.NewFaultFS(store.OS{}, nil)),
		store.WithSleep(func(time.Duration) {}))
	if err != nil {
		t.Fatalf("store.Open: %v", err)
	}
	cache := TraceCache()
	cache.SetTier(st)
	defer cache.SetTier(nil)
	faultsim.InjectDisk(".rart", faultsim.DiskFault{Kind: faultsim.DiskENOSPC})

	opt := subset("go", "tom", "com", "gcc")
	opt.Size = 27
	opt.MaxInsts = 1_000_000
	faultsim.Inject(name(t, "go"), faultsim.Fault{Kind: faultsim.Stall, Times: 1})
	faultsim.Inject(name(t, "tom"), faultsim.Fault{Kind: faultsim.Panic, Times: 1})
	faultsim.Inject(name(t, "com"), faultsim.Fault{Kind: faultsim.Livelock, Times: 1})

	sup := supervise.New(supervise.Config{
		StallTimeout: time.Second,
		Grace:        50 * time.Millisecond,
		MaxRetries:   2,
		Sleep:        func(time.Duration) {},
	})
	opt.Supervise = sup

	e, _ := ByID("fig2")
	var out strings.Builder
	RunSuite(opt, []Experiment{e}, func(item SuiteItem) bool {
		if item.Err != nil {
			t.Fatalf("chaos suite hard-failed: %v", item.Err)
		}
		out.WriteString(item.Result.String())
		return true
	})
	sup.Close()
	rendered := out.String()

	// The transiently faulted and clean workloads all have rows; only the
	// livelocked one is annotated.
	for _, ab := range []string{"go", "tom", "gcc"} {
		if !regexp.MustCompile(`(?m)^` + ab + `\b`).MatchString(rendered) {
			t.Errorf("surviving workload %s missing from output:\n%s", ab, rendered)
		}
	}
	if !strings.Contains(rendered, "partial result") {
		t.Fatalf("livelocked cell not isolated:\n%s", rendered)
	}
	for _, line := range strings.Split(rendered, "\n") {
		if strings.HasPrefix(line, "!!   ") && !strings.Contains(line, name(t, "com")) {
			t.Errorf("unexpected failure annotation: %s", line)
		}
	}

	t.Logf("store stats: %+v, breaker: %+v", st.Stats(), breaker.Stats())
	sum := sup.Summary()
	if sum.StallsDetected < 1 || sum.Retries < 1 || sum.AbandonedWorkers < 1 {
		t.Errorf("chaos summary too quiet: %+v", sum)
	}
	if breaker.State() != store.BreakerOpen {
		t.Errorf("breaker %q after persistent disk faults, want open", breaker.State())
	}
	if breaker.Stats().Bypasses == 0 {
		t.Errorf("open breaker short-circuited nothing")
	}

	faultsim.Reset()
	waitGoroutines(t, before)
	assertNoPins(t)
}
