package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/cloak"
	"rarpred/internal/runerr"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID: "ablmerge",
		Title: "Ablation: synonym merge policy (incremental Chrysos/Emer " +
			"vs full associative vs never; Section 5.1 discussion)",
		Cells: ablMergeCells,
	})
	register(Experiment{
		ID: "ablsplit",
		Title: "Ablation: shared vs split DDT (the Section 5.6.2 eviction " +
			"anomaly)",
		Cells: ablSplitCells,
	})
	register(Experiment{
		ID:    "abldpnt",
		Title: "Ablation: DPNT capacity sweep (512 entries to infinite)",
		Cells: ablDPNTCells,
	})
}

// ablCell is coverage/misspeculation for one configuration.
type ablCell struct {
	Coverage float64
	Misp     float64
}

// AblationResult is a generic per-workload, per-variant accuracy table.
type AblationResult struct {
	Title    string
	Variants []string
	Rows     []struct {
		Workload workload.Workload
		Cells    []ablCell
	}
}

// variantCells builds a CellRunner with one cloaking engine per variant,
// each consuming the immutable stream from its own goroutine (the
// engines share no state, so a multi-variant cell uses one core per
// variant instead of fanning out per event on one).
func variantCells(title string, variants []string, mk func(variant int) cloak.Config) CellRunner {
	type row = struct {
		Workload workload.Workload
		Cells    []ablCell
	}
	return tracedCells(workload.ReferenceSize,
		func(_ Options, w workload.Workload, tr *trace.Stream) (row, error) {
			engines := make([]*cloak.Engine, len(variants))
			sinks := make([]trace.Sink, len(variants))
			for i := range variants {
				eng := cloak.New(mk(i))
				engines[i] = eng
				sinks[i] = trace.SinkFuncs{
					OnLoad:  func(pc, addr, value uint32) { eng.Load(pc, addr, value) },
					OnStore: func(pc, addr, value uint32) { eng.Store(pc, addr, value) },
				}
			}
			tr.ReplayEach(sinks...)
			r := row{Workload: w, Cells: make([]ablCell, len(variants))}
			for i, eng := range engines {
				st := eng.Stats()
				r.Cells[i] = ablCell{
					Coverage: stats.Ratio(st.Covered(), st.Loads),
					Misp:     stats.Ratio(st.Mispredicted(), st.Loads),
				}
			}
			return r, nil
		},
		func(_ Options, _ []workload.Workload, rows []row, fails []*runerr.WorkloadError) (Result, error) {
			return annotate(&AblationResult{Title: title, Variants: variants, Rows: rows}, fails), nil
		})
}

var ablMergeCells = func() CellRunner {
	variants := []string{"incremental", "full", "never"}
	merges := []cloak.MergeKind{cloak.MergeIncremental, cloak.MergeFull, cloak.MergeNever}
	return variantCells("Synonym merge policy", variants, func(i int) cloak.Config {
		cfg := cloak.DefaultConfig()
		cfg.Merge = merges[i]
		return cfg
	})
}()

var ablSplitCells = variantCells("Shared vs split DDT",
	[]string{"shared 128", "split 128+128"}, func(i int) cloak.Config {
		cfg := cloak.DefaultConfig()
		cfg.SplitDDT = i == 1
		return cfg
	})

var ablDPNTCells = func() CellRunner {
	sizes := []int{512, 2048, 8192, 0}
	variants := []string{"512", "2K", "8K", "inf"}
	return variantCells("DPNT capacity", variants, func(i int) cloak.Config {
		cfg := cloak.DefaultConfig()
		if sizes[i] > 0 {
			cfg.DPNTSets = sizes[i] / 2
			cfg.DPNTWays = 2
		}
		return cfg
	})
}()

func runAblMerge(opt Options) (Result, error) { return runCells(opt, ablMergeCells) }

func runAblSplit(opt Options) (Result, error) { return runCells(opt, ablSplitCells) }

func runAblDPNT(opt Options) (Result, error) { return runCells(opt, ablDPNTCells) }

// String renders coverage and misspeculation per variant.
func (r *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", r.Title)
	header := []string{"prog"}
	for _, v := range r.Variants {
		header = append(header, v+" cov", v+" misp")
	}
	t := stats.NewTable(header...)
	for _, row := range r.Rows {
		cells := []any{row.Workload.Abbrev}
		for _, c := range row.Cells {
			cells = append(cells, stats.Pct(c.Coverage), stats.Pct2(c.Misp))
		}
		t.Row(cells...)
	}
	sb.WriteString(t.String())
	// Suite means per variant.
	means := make([]float64, len(r.Variants))
	for _, row := range r.Rows {
		for i, c := range row.Cells {
			means[i] += c.Coverage
		}
	}
	sb.WriteString("mean coverage:")
	for i, v := range r.Variants {
		fmt.Fprintf(&sb, " %s %s", v, stats.Pct(means[i]/float64(len(r.Rows))))
	}
	sb.WriteByte('\n')
	return sb.String()
}
