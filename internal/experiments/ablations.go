package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/cloak"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID: "ablmerge",
		Title: "Ablation: synonym merge policy (incremental Chrysos/Emer " +
			"vs full associative vs never; Section 5.1 discussion)",
		Run: runAblMerge,
	})
	register(Experiment{
		ID: "ablsplit",
		Title: "Ablation: shared vs split DDT (the Section 5.6.2 eviction " +
			"anomaly)",
		Run: runAblSplit,
	})
	register(Experiment{
		ID:    "abldpnt",
		Title: "Ablation: DPNT capacity sweep (512 entries to infinite)",
		Run:   runAblDPNT,
	})
}

// ablCell is coverage/misspeculation for one configuration.
type ablCell struct {
	Coverage float64
	Misp     float64
}

// AblationResult is a generic per-workload, per-variant accuracy table.
type AblationResult struct {
	Title    string
	Variants []string
	Rows     []struct {
		Workload workload.Workload
		Cells    []ablCell
	}
}

// runVariants drives one run per workload with an engine per variant.
func runVariants(opt Options, title string, variants []string,
	mk func(variant int) cloak.Config) (Result, error) {

	size := opt.size(workload.ReferenceSize)
	type row = struct {
		Workload workload.Workload
		Cells    []ablCell
	}
	rows, _, fails, err := forEachWorkloadTraced(opt, size, func(w workload.Workload, tr *trace.Stream) (row, error) {
		engines := make([]*cloak.Engine, len(variants))
		for i := range variants {
			engines[i] = cloak.New(mk(i))
		}
		tr.Replay(trace.SinkFuncs{
			OnLoad: func(pc, addr, value uint32) {
				for _, eng := range engines {
					eng.Load(pc, addr, value)
				}
			},
			OnStore: func(pc, addr, value uint32) {
				for _, eng := range engines {
					eng.Store(pc, addr, value)
				}
			},
		})
		r := row{Workload: w, Cells: make([]ablCell, len(variants))}
		for i, eng := range engines {
			st := eng.Stats()
			r.Cells[i] = ablCell{
				Coverage: stats.Ratio(st.Covered(), st.Loads),
				Misp:     stats.Ratio(st.Mispredicted(), st.Loads),
			}
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	return annotate(&AblationResult{Title: title, Variants: variants, Rows: rows}, fails), nil
}

func runAblMerge(opt Options) (Result, error) {
	variants := []string{"incremental", "full", "never"}
	merges := []cloak.MergeKind{cloak.MergeIncremental, cloak.MergeFull, cloak.MergeNever}
	return runVariants(opt, "Synonym merge policy", variants, func(i int) cloak.Config {
		cfg := cloak.DefaultConfig()
		cfg.Merge = merges[i]
		return cfg
	})
}

func runAblSplit(opt Options) (Result, error) {
	variants := []string{"shared 128", "split 128+128"}
	return runVariants(opt, "Shared vs split DDT", variants, func(i int) cloak.Config {
		cfg := cloak.DefaultConfig()
		cfg.SplitDDT = i == 1
		return cfg
	})
}

func runAblDPNT(opt Options) (Result, error) {
	sizes := []int{512, 2048, 8192, 0}
	variants := []string{"512", "2K", "8K", "inf"}
	return runVariants(opt, "DPNT capacity", variants, func(i int) cloak.Config {
		cfg := cloak.DefaultConfig()
		if sizes[i] > 0 {
			cfg.DPNTSets = sizes[i] / 2
			cfg.DPNTWays = 2
		}
		return cfg
	})
}

// String renders coverage and misspeculation per variant.
func (r *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Ablation: %s\n", r.Title)
	header := []string{"prog"}
	for _, v := range r.Variants {
		header = append(header, v+" cov", v+" misp")
	}
	t := stats.NewTable(header...)
	for _, row := range r.Rows {
		cells := []any{row.Workload.Abbrev}
		for _, c := range row.Cells {
			cells = append(cells, stats.Pct(c.Coverage), stats.Pct2(c.Misp))
		}
		t.Row(cells...)
	}
	sb.WriteString(t.String())
	// Suite means per variant.
	means := make([]float64, len(r.Variants))
	for _, row := range r.Rows {
		for i, c := range row.Cells {
			means[i] += c.Coverage
		}
	}
	sb.WriteString("mean coverage:")
	for i, v := range r.Variants {
		fmt.Fprintf(&sb, " %s %s", v, stats.Pct(means[i]/float64(len(r.Rows))))
	}
	sb.WriteByte('\n')
	return sb.String()
}
