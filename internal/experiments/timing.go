package experiments

import (
	"context"
	"fmt"
	"sync"

	"rarpred/internal/faultsim"
	"rarpred/internal/funcsim"
	"rarpred/internal/pipeline"
	"rarpred/internal/runerr"
	"rarpred/internal/supervise"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

// Timing experiments (fig9, fig10, ablmemspec, ablrecovery) sweep many
// pipeline configurations over each workload. The paper evaluates every
// configuration against one fixed committed instruction stream per
// benchmark, so the harness records that stream once (trace.IStream,
// cached under the shared trace.Cache with Timing keys) and replays it
// into every configuration's pipeline.Sim — the timing sibling of the
// functional experiments' shared memory-trace cache.

// timingRunner is cells plus the timing-stream dependency edge: its
// StreamKey lets the suite scheduler pin the instruction recording until
// every consuming cell has run, exactly like tracedRunner does for
// memory streams.
type timingRunner[T any] struct {
	cellRunner[T]
}

func (r timingRunner[T]) StreamKey(opt Options, w workload.Workload) (trace.Key, bool) {
	if opt.Live {
		return trace.Key{}, false
	}
	return trace.Key{
		Workload: w.Name,
		Size:     opt.size(workload.TimingSize),
		MaxInsts: opt.maxInsts(),
		Timing:   true,
	}, true
}

// timingCellsOf builds a CellRunner for a timing experiment whose cells
// replay the shared instruction recording (see runTimingConfigs).
func timingCellsOf[T any](
	cell func(ctx context.Context, opt Options, w workload.Workload) (T, error),
	assemble func(opt Options, ws []workload.Workload, rows []T, fails []*runerr.WorkloadError) (Result, error),
) CellRunner {
	return timingRunner[T]{cellRunner[T]{cell: cell, assemble: assemble}}
}

// runTimingConfigs runs one workload under every configuration
// concurrently (parallelSims). On the cached path the committed
// instruction stream is recorded once and each configuration replays it;
// Options.Live forces every configuration onto the pre-trace path — a
// full live interpreter per pipeline.Sim — so the replay's speedup can
// be measured against the costs it removed. wrap attributes
// configuration i's error the way the calling experiment labels its
// variants.
func runTimingConfigs(ctx context.Context, opt Options, w workload.Workload, size int,
	cfgs []pipeline.Config, wrap func(i int, err error) error) ([]pipeline.Result, error) {
	results := make([]pipeline.Result, len(cfgs))
	if opt.Live {
		err := parallelSims(ctx, len(cfgs), func(i int) error {
			cfg := cfgs[i]
			cfg.Interrupt = interruptHook(ctx)
			res, err := pipeline.RunProgram(w.Program(size), cfg)
			results[i] = res
			if err != nil {
				return wrap(i, err)
			}
			return nil
		})
		return results, err
	}
	is, err := workloadIStream(ctx, opt, w, size, opt.maxInsts())
	if err != nil {
		return nil, err
	}
	prog := w.Program(size)
	err = parallelSims(ctx, len(cfgs), func(i int) error {
		defer startSpan("cell/replay").End()
		cfg := cfgs[i]
		cfg.Interrupt = interruptHook(ctx)
		res, err := pipeline.NewReplay(prog, is, cfg).Run()
		results[i] = res
		if err != nil {
			return wrap(i, err)
		}
		return nil
	})
	return results, err
}

// interruptHook builds the pipeline Config.Interrupt seam from the run
// context: the hook beats any supervision heartbeat riding in ctx and
// surfaces cancellation, both at the pipeline's InterruptEvery commit
// boundary. nil (no per-instruction cost) when neither is in play.
func interruptHook(ctx context.Context) func() error {
	hb := supervise.FromContext(ctx)
	if ctx.Done() == nil && hb == nil {
		return nil
	}
	return func() error {
		hb.Beat()
		return ctx.Err()
	}
}

// workloadIStream obtains one workload's committed instruction stream
// under the same resilience policy as workloadStream: shared cache ->
// (corrupt recording? drop the poisoned entry and re-record on the
// baseline interpreter) -> error. Fault-injection hooks reach the
// recording loop through the record closure.
func workloadIStream(ctx context.Context, opt Options, w workload.Workload, size int, maxInsts uint64) (*trace.IStream, error) {
	key := trace.Key{Workload: w.Name, Size: size, MaxInsts: maxInsts, Timing: true}
	record := func() (*trace.IStream, error) {
		defer startSpan("cell/record").End()
		is, err := trace.RecordIStreamContext(ctx, w.Program(size), maxInsts, faultsim.Hook(w.Name, ctx))
		if err == nil && faultsim.Enabled() && faultsim.ShouldCorrupt(w.Name) {
			// One spurious memory record desynchronises the tally from the
			// execution profile, which Validate below must catch.
			is.AppendMem(0, 0)
		}
		return is, err
	}
	is, err := traceCache.GetIStreamContext(ctx, key, record)
	if err == nil {
		if verr := is.Validate(); verr != nil {
			// Graceful degradation: never replay a corrupt recording. Drop
			// the poisoned entry so later lookups re-record, and retry on
			// the independent baseline interpreter before declaring the
			// workload failed.
			traceCache.Drop(key)
			is, err = trace.RecordIStreamBaselineContext(ctx, w.Assemble(size), maxInsts)
			if err == nil {
				err = is.Validate()
			}
			if err != nil {
				err = fmt.Errorf("%w; live re-record also failed: %w", verr, err)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if is.Truncated {
		return nil, funcsim.ErrMaxInsts
	}
	if opt.Check {
		if err := verifyIStreamOnce(key, is, w, size); err != nil {
			return nil, err
		}
	}
	return is, nil
}

// istreamVerified tracks which timing recordings the differential oracle
// has already shadowed, so a -check run pays the live pipeline run once
// per cache key rather than once per consuming cell.
var istreamVerified sync.Map // trace.Key -> struct{}

// verifyIStreamOnce is the replay-vs-live pipeline oracle: a timing
// simulation fed from the recorded stream must produce a Result
// identical to one driven by the live functional interpreter (the feed
// is the only difference between the two simulations, so any divergence
// means the recording or the replay path is broken). The first caller
// per key performs the comparison; concurrent callers may race to verify
// the same key once each, which is only redundant work.
func verifyIStreamOnce(key trace.Key, is *trace.IStream, w workload.Workload, size int) error {
	if _, done := istreamVerified.LoadOrStore(key, struct{}{}); done {
		return nil
	}
	prog := w.Program(size)
	cfg := pipeline.DefaultConfig()
	live, err := pipeline.RunProgram(prog, cfg)
	if err != nil {
		istreamVerified.Delete(key) // transient; let a retry re-verify
		return fmt.Errorf("check: live pipeline shadow failed: %w", err)
	}
	replay, err := pipeline.NewReplay(prog, is, cfg).Run()
	if err != nil {
		istreamVerified.Delete(key)
		return fmt.Errorf("check: replayed pipeline shadow failed: %w", err)
	}
	if replay != live {
		return fmt.Errorf("check: replayed timing run diverges from live pipeline: got %+v, want %+v", replay, live)
	}
	return nil
}
