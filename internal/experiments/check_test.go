package experiments

import (
	"context"
	"errors"
	"strings"
	"testing"

	"rarpred/internal/faultsim"
	"rarpred/internal/runerr"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

// These tests use workload sizes no other test uses (13, 15, 17, 19,
// 21, 23), so the shared trace cache and the oracle's verified-key set
// cannot be pre-populated by another test.

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("unknown experiment %s", id)
	}
	return e
}

func pinned(t *testing.T) int {
	t.Helper()
	return TraceCache().Stats().Pinned
}

// TestSuitePinsDrainOnSuccess: RunSuite retains every stream its cells
// will consume and must release all of them by the time it returns.
func TestSuitePinsDrainOnSuccess(t *testing.T) {
	opt := subset("go", "tom")
	opt.Size = 13
	exps := []Experiment{mustByID(t, "table51"), mustByID(t, "fig2")}
	RunSuite(opt, exps, func(item SuiteItem) bool {
		if item.Err != nil {
			t.Errorf("%s: %v", item.Exp.ID, item.Err)
		}
		return true
	})
	if n := pinned(t); n != 0 {
		t.Fatalf("%d streams still pinned after a clean suite", n)
	}
}

// TestSuitePinsDrainOnFailure: a panicking workload fails its cells but
// every Retain still meets its Release.
func TestSuitePinsDrainOnFailure(t *testing.T) {
	defer faultsim.Reset()
	opt := subset("go", "tom")
	opt.Size = 15
	w, _ := workload.ByAbbrev("go")
	faultsim.Inject(w.Name, faultsim.Fault{Kind: faultsim.Panic})
	RunSuite(opt, []Experiment{mustByID(t, "table51"), mustByID(t, "fig2")},
		func(SuiteItem) bool { return true })
	if n := pinned(t); n != 0 {
		t.Fatalf("%d streams still pinned after a failing suite", n)
	}
}

// TestSuitePinsDrainOnCancelAndStop: neither a dead run context nor a
// deliver=false stop may leak pins — the queue is drained either way.
func TestSuitePinsDrainOnCancelAndStop(t *testing.T) {
	opt := subset("go", "tom")
	opt.Size = 17
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opt.Context = ctx
	RunSuite(opt, []Experiment{mustByID(t, "table51"), mustByID(t, "fig2")},
		func(item SuiteItem) bool {
			if !item.NotRun {
				t.Errorf("%s ran under a dead context", item.Exp.ID)
			}
			return true
		})
	if n := pinned(t); n != 0 {
		t.Fatalf("%d streams still pinned after canceled suite", n)
	}

	opt = subset("go", "tom")
	opt.Size = 19
	RunSuite(opt, []Experiment{mustByID(t, "table51"), mustByID(t, "fig2")},
		func(SuiteItem) bool { return false }) // stop after the first result
	if n := pinned(t); n != 0 {
		t.Fatalf("%d streams still pinned after stopped suite", n)
	}
}

// TestAssemblePanicIsolated: a panicking Assemble fails its experiment
// (typed, stamped), not the pool worker — later experiments still
// deliver and the pins still drain.
func TestAssemblePanicIsolated(t *testing.T) {
	opt := subset("go", "tom")
	opt.Size = 13 // cache-only reuse; no oracle, no faults
	bomb := Experiment{
		ID:    "bomb",
		Title: "assembler that panics",
		Cells: cells(
			func(ctx context.Context, opt Options, w workload.Workload) (int, error) { return 1, nil },
			func(opt Options, ws []workload.Workload, rows []int, fails []*runerr.WorkloadError) (Result, error) {
				panic("assembler exploded")
			},
		),
	}
	var got []SuiteItem
	RunSuite(opt, []Experiment{bomb, mustByID(t, "fig2")}, func(item SuiteItem) bool {
		got = append(got, item)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("delivered %d items, want 2", len(got))
	}
	if err := got[0].Err; err == nil || !errors.Is(err, runerr.ErrWorkloadPanic) ||
		!strings.Contains(err.Error(), "bomb") {
		t.Errorf("bomb error = %v, want stamped ErrWorkloadPanic", err)
	}
	if got[1].Err != nil {
		t.Errorf("experiment after the bomb failed: %v", got[1].Err)
	}
	if n := pinned(t); n != 0 {
		t.Fatalf("%d streams still pinned after assembler panic", n)
	}
}

// TestCheckOracleCleanRun: the replay-vs-live oracle passes on an honest
// cache and does not perturb the rendered result.
func TestCheckOracleCleanRun(t *testing.T) {
	opt := subset("com", "hyd")
	opt.Size = 21
	plain, err := runFig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Check = true
	checked, err := runFig2(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, partial := checked.(*PartialResult); partial {
		t.Fatalf("oracle flagged an honest stream: %s", checked)
	}
	if plain.String() != checked.String() {
		t.Errorf("-check perturbed the result:\n--- plain ---\n%s--- checked ---\n%s",
			plain.String(), checked.String())
	}
}

// TestCheckOracleCatchesDivergence: a cached stream that passes Validate
// (tallies intact) but holds one wrong value is exactly what the
// event-level oracle exists for — the tally check cannot see it.
func TestCheckOracleCatchesDivergence(t *testing.T) {
	opt := subset("com", "m88")
	opt.Size = 23
	opt.MaxInsts = 1_000_000
	opt.Check = true
	w := opt.Workloads[0]

	correct, err := trace.RecordStreamBaselineContext(context.Background(), w.Assemble(opt.Size), opt.MaxInsts)
	if err != nil {
		t.Fatal(err)
	}
	bad := trace.NewStream()
	i := 0
	flip := func(kind trace.Kind) func(pc, addr, value uint32) {
		return func(pc, addr, value uint32) {
			if i == 7 {
				value ^= 1
			}
			bad.Append(kind, pc, addr, value)
			i++
		}
	}
	correct.Replay(trace.SinkFuncs{OnLoad: flip(trace.KindLoad), OnStore: flip(trace.KindStore)})
	bad.Counts = correct.Counts
	if bad.Validate() != nil || trace.DiffStreams(bad, correct) == nil {
		t.Fatal("test setup: bad stream must pass Validate yet differ")
	}

	key := trace.Key{Workload: w.Name, Size: opt.Size, MaxInsts: opt.MaxInsts}
	if _, err := TraceCache().Get(key, func() (*trace.Stream, error) { return bad, nil }); err != nil {
		t.Fatal(err)
	}
	defer TraceCache().Drop(key)

	res, err := runFig2(opt)
	if err != nil {
		t.Fatalf("divergence aborted the run instead of failing the workload: %v", err)
	}
	p, ok := res.(*PartialResult)
	if !ok {
		t.Fatalf("poisoned stream produced a clean result: %s", res)
	}
	if len(p.Fails) != 1 || p.Fails[0].Workload != w.Name {
		t.Fatalf("failures = %v, want exactly the poisoned workload", p.Fails)
	}
	if msg := p.Fails[0].Error(); !strings.Contains(msg, "diverges") {
		t.Errorf("failure does not describe the divergence: %s", msg)
	}
}
