package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"rarpred/internal/funcsim"
	"rarpred/internal/locality"
	"rarpred/internal/workload"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedWorkloads returns two deterministic workload descriptors for
// rendering tests (no simulation happens; only metadata is used).
func fixedWorkloads() (workload.Workload, workload.Workload) {
	gcc, _ := workload.ByAbbrev("gcc")
	tom, _ := workload.ByAbbrev("tom")
	return gcc, tom
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if string(want) != got {
		t.Errorf("rendering changed; run `go test ./internal/experiments -run TestRender -update` if intended.\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestRenderTable51(t *testing.T) {
	gcc, tom := fixedWorkloads()
	r := &Table51Result{Rows: []Table51Row{
		{Workload: gcc, Counts: funcsim.Counts{Insts: 1_500_000, Loads: 450_000, Stores: 50_000}},
		{Workload: tom, Counts: funcsim.Counts{Insts: 2_000_000, Loads: 700_000, Stores: 100_000}},
	}}
	checkGolden(t, "table51", r.String())
}

func TestRenderFig2(t *testing.T) {
	gcc, tom := fixedWorkloads()
	r := &Fig2Result{Rows: []Fig2Row{
		{Workload: gcc, SinkInf: 1000, SinkWin: 900,
			Infinite: [locality.MaxDepth]float64{0.80, 0.90, 0.95, 0.99},
			Windowed: [locality.MaxDepth]float64{0.82, 0.91, 0.96, 0.99}},
		{Workload: tom, SinkInf: 2000, SinkWin: 0, // window sees no sinks
			Infinite: [locality.MaxDepth]float64{0.99, 1, 1, 1},
			Windowed: [locality.MaxDepth]float64{0.99, 1, 1, 1}},
	}}
	checkGolden(t, "fig2", r.String())
}

func TestRenderFig5(t *testing.T) {
	gcc, tom := fixedWorkloads()
	mk := func(base float64) []Fig5Point {
		var pts []Fig5Point
		for i, s := range Fig5Sizes {
			pts = append(pts, Fig5Point{DDTSize: s,
				RAWFrac: base + float64(i)*0.02, RARFrac: 0.2 - float64(i)*0.01})
		}
		return pts
	}
	r := &Fig5Result{Rows: []Fig5Row{
		{Workload: gcc, Points: mk(0.3)},
		{Workload: tom, Points: mk(0.05)},
	}}
	checkGolden(t, "fig5", r.String())
}

func TestRenderFig6(t *testing.T) {
	gcc, tom := fixedWorkloads()
	r := &Fig6Result{
		Rows: []Fig6Row{
			{Workload: gcc,
				OneBit: Fig6Cell{CoverageRAW: 0.25, CoverageRAR: 0.30, MispRAW: 0.05, MispRAR: 0.08},
				TwoBit: Fig6Cell{CoverageRAW: 0.22, CoverageRAR: 0.28, MispRAW: 0.004, MispRAR: 0.006}},
			{Workload: tom,
				OneBit: Fig6Cell{CoverageRAW: 0.05, CoverageRAR: 0.40, MispRAW: 0.01, MispRAR: 0.12},
				TwoBit: Fig6Cell{CoverageRAW: 0.05, CoverageRAR: 0.35, MispRAW: 0.001, MispRAR: 0.002}},
		},
		MispIntTwoBit: 0.01, MispFPTwoBit: 0.003, MispAllTwoBit: 0.0065,
		CovIntTwoBit: 0.50, CovFPTwoBit: 0.40, CovAllTwoBit: 0.45,
	}
	checkGolden(t, "fig6", r.String())
}

func TestRenderFig7(t *testing.T) {
	gcc, tom := fixedWorkloads()
	rows := []Fig7Row{
		{Workload: gcc, LocalRAW: 0.10, LocalRAR: 0.05, LocalNone: 0.02,
			CoverageRAW: 0.20, CoverageRAR: 0.30},
		{Workload: tom, LocalRAW: 0.01, LocalRAR: 0.25, LocalNone: 0.20,
			CoverageRAW: 0.08, CoverageRAR: 0.33},
	}
	checkGolden(t, "fig7a", (&Fig7Result{Value: false, Rows: rows}).String())
	checkGolden(t, "fig7b", (&Fig7Result{Value: true, Rows: rows}).String())
}

func TestRenderTable52(t *testing.T) {
	gcc, tom := fixedWorkloads()
	r := &Table52Result{Rows: []Table52Row{
		{Workload: gcc, CloakOnlyRAW: 0.02, CloakOnlyRAR: 0.45, VPOnly: 0.02},
		{Workload: tom, CloakOnlyRAW: 0.08, CloakOnlyRAR: 0.16, VPOnly: 0.17},
	}}
	checkGolden(t, "table52", r.String())
}

func TestRenderFig9AndFig10(t *testing.T) {
	gcc, tom := fixedWorkloads()
	rows := []Fig9Row{
		{Workload: gcc, BaseCycles: 100_000, SelRAW: 0.00, SelRAWRAR: 0.141,
			SqRAW: -0.016, SqRAWRAR: 0.14, IPCBase: 1.48},
		{Workload: tom, BaseCycles: 200_000, SelRAW: 0.001, SelRAWRAR: 0.002,
			SqRAW: -0.009, SqRAWRAR: -0.026, IPCBase: 4.25},
	}
	r9 := &Fig9Result{Rows: rows,
		SelRAWInt: 0.016, SelRAWFP: 0.025, SelRAWAll: 0.021,
		SelRAWRARInt: 0.063, SelRAWRARFP: 0.030, SelRAWRARAll: 0.045}
	checkGolden(t, "fig9", r9.String())
	r10 := &Fig9Result{NoSpec: true, Rows: rows,
		SelRAWInt: 0.017, SelRAWFP: 0.025, SelRAWAll: 0.022,
		SelRAWRARInt: 0.089, SelRAWRARFP: 0.030, SelRAWRARAll: 0.056}
	checkGolden(t, "fig10", r10.String())
}

func TestRenderAblation(t *testing.T) {
	gcc, tom := fixedWorkloads()
	r := &AblationResult{
		Title:    "Synonym merge policy",
		Variants: []string{"incremental", "full"},
		Rows: []struct {
			Workload workload.Workload
			Cells    []ablCell
		}{
			{Workload: gcc, Cells: []ablCell{{0.50, 0.001}, {0.50, 0.001}}},
			{Workload: tom, Cells: []ablCell{{0.41, 0.003}, {0.41, 0.003}}},
		},
	}
	checkGolden(t, "ablation", r.String())
}

func TestRenderExtensions(t *testing.T) {
	gcc, tom := fixedWorkloads()
	ms := &MemSpecResult{Rows: []MemSpecRow{
		{Workload: gcc, NoSpecIPC: 1.48, NaiveIPC: 1.48, StoreSetsIPC: 1.48,
			NaiveViolations: 0, StoreSetViolations: 0},
		{Workload: tom, NoSpecIPC: 4.20, NaiveIPC: 4.25, StoreSetsIPC: 4.25,
			NaiveViolations: 12, StoreSetViolations: 1},
	}}
	checkGolden(t, "ablmemspec", ms.String())

	rec := &RecoveryResult{Rows: []RecoveryRow{
		{Workload: gcc, Selective: 0.16, Squash: 0.16, Oracle: 0.16, Skipped: 1},
		{Workload: tom, Selective: 0.0, Squash: -0.014, Oracle: 0.0, Skipped: 122},
	}}
	checkGolden(t, "ablrecovery", rec.String())

	syn := &SynergyResult{
		Rows: []SynergyRow{
			{Workload: gcc, Cloak: 0.50, VP: 0.05, Hybrid: 0.52},
			{Workload: tom, Cloak: 0.41, VP: 0.34, Hybrid: 0.58},
		},
		CloakMean: 0.455, VPMean: 0.195, HybridMean: 0.55,
	}
	checkGolden(t, "synergy", syn.String())
}

func TestRenderProfile(t *testing.T) {
	gcc, tom := fixedWorkloads()
	r := &ProfileResult{Rows: []ProfileRow{
		{Workload: gcc, Hardware: 0.50, Software: 0.50, Pairs: 4},
		{Workload: tom, Hardware: 0.41, Software: 0.41, Pairs: 7},
	}}
	checkGolden(t, "ablprofile", r.String())
}
