package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/funcsim"
	"rarpred/internal/runerr"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "table51",
		Title: "Table 5.1: benchmark execution characteristics (IC, loads, stores)",
		Cells: table51Cells,
	})
}

// Table51Row is one benchmark's dynamic execution characteristics.
type Table51Row struct {
	Workload workload.Workload
	Counts   funcsim.Counts
}

// Table51Result reproduces Table 5.1 for the analog suite.
type Table51Result struct {
	Rows []Table51Row
}

var table51Cells = tracedCells(workload.ReferenceSize,
	func(_ Options, w workload.Workload, tr *trace.Stream) (Table51Row, error) {
		return Table51Row{Workload: w, Counts: tr.Counts}, nil
	},
	func(_ Options, _ []workload.Workload, rows []Table51Row, fails []*runerr.WorkloadError) (Result, error) {
		return annotate(&Table51Result{Rows: rows}, fails), nil
	})

func runTable51(opt Options) (Result, error) { return runCells(opt, table51Cells) }

// String renders the table in the paper's layout (instruction counts in
// millions; this reproduction runs smaller full programs instead of
// sampled 100M-instruction runs).
func (r *Table51Result) String() string {
	var sb strings.Builder
	sb.WriteString("Table 5.1: Benchmark Execution Characteristics (analog suite)\n")
	t := stats.NewTable("Program", "Ab.", "IC(M)", "Loads", "Stores")
	prevClass := workload.Class(255)
	for _, row := range r.Rows {
		if row.Workload.Class != prevClass {
			if prevClass != 255 {
				t.Rule()
			}
			prevClass = row.Workload.Class
		}
		t.Row(
			row.Workload.Analog+" ("+row.Workload.Name+")",
			row.Workload.Abbrev,
			fmt.Sprintf("%.2f", float64(row.Counts.Insts)/1e6),
			stats.Pct(row.Counts.LoadFrac()),
			stats.Pct(row.Counts.StoreFrac()),
		)
	}
	sb.WriteString(t.String())
	return sb.String()
}
