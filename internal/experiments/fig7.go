package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/cloak"
	"rarpred/internal/locality"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID: "fig7a",
		Title: "Figure 7(a): address locality breakdown (RAW/RAR/no " +
			"dependence) vs cloaking coverage",
		Run: func(opt Options) (Result, error) { return runFig7(opt, false) },
	})
	register(Experiment{
		ID: "fig7b",
		Title: "Figure 7(b): value locality breakdown (RAW/RAR/no " +
			"dependence) vs cloaking coverage",
		Run: func(opt Options) (Result, error) { return runFig7(opt, true) },
	})
}

// Fig7Row correlates locality (address or value, per the experiment) with
// the dependence detected per load, alongside cloaking coverage. All
// fields are fractions over all executed loads.
type Fig7Row struct {
	Workload workload.Workload

	// Left bar: loads whose consecutive executions repeat the address
	// (fig7a) or value (fig7b), split by the dependence detected on the
	// repeating execution.
	LocalRAW  float64
	LocalRAR  float64
	LocalNone float64

	// Right bar: cloaking coverage split.
	CoverageRAW float64
	CoverageRAR float64
}

// Local is the total locality fraction.
func (r Fig7Row) Local() float64 { return r.LocalRAW + r.LocalRAR + r.LocalNone }

// Coverage is the total cloaking coverage.
func (r Fig7Row) Coverage() float64 { return r.CoverageRAW + r.CoverageRAR }

// Fig7Result reproduces Figure 7(a) or 7(b).
type Fig7Result struct {
	Value bool // false: address locality (7a); true: value locality (7b)
	Rows  []Fig7Row
}

func runFig7(opt Options, value bool) (Result, error) {
	size := opt.size(workload.ReferenceSize)
	rows, _, fails, err := forEachWorkloadTraced(opt, size, func(w workload.Workload, tr *trace.Stream) (Fig7Row, error) {
		engine := cloak.New(cloak.DefaultConfig())
		last := locality.NewLastMap()
		var loads, localRAW, localRAR, localNone uint64
		tr.Replay(trace.SinkFuncs{
			OnLoad: func(pc, addr, val uint32) {
				loads++
				word := addr
				if value {
					word = val
				}
				repeats := last.Observe(pc, word)
				out := engine.Load(pc, addr, val)
				if repeats {
					switch out.Dep {
					case cloak.DepRAW:
						localRAW++
					case cloak.DepRAR:
						localRAR++
					default:
						localNone++
					}
				}
			},
			OnStore: func(pc, addr, val uint32) { engine.Store(pc, addr, val) },
		})
		st := engine.Stats()
		return Fig7Row{
			Workload:    w,
			LocalRAW:    stats.Ratio(localRAW, loads),
			LocalRAR:    stats.Ratio(localRAR, loads),
			LocalNone:   stats.Ratio(localNone, loads),
			CoverageRAW: stats.Ratio(st.CorrectRAW, loads),
			CoverageRAR: stats.Ratio(st.CorrectRAR, loads),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return annotate(&Fig7Result{Value: value, Rows: rows}, fails), nil
}

// String renders left (locality breakdown) and right (coverage) bars.
func (r *Fig7Result) String() string {
	kind, fig := "Address", "7(a)"
	if r.Value {
		kind, fig = "Value", "7(b)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s locality breakdown vs cloaking coverage\n", fig, kind)
	t := stats.NewTable("prog",
		"loc RAW", "loc RAR", "loc none", "loc tot",
		"cov RAW", "cov RAR", "cov tot")
	for _, row := range r.Rows {
		t.Row(row.Workload.Abbrev,
			stats.Pct(row.LocalRAW), stats.Pct(row.LocalRAR), stats.Pct(row.LocalNone),
			stats.Pct(row.Local()),
			stats.Pct(row.CoverageRAW), stats.Pct(row.CoverageRAR), stats.Pct(row.Coverage()))
	}
	sb.WriteString(t.String())
	return sb.String()
}
