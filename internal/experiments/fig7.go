package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/cloak"
	"rarpred/internal/locality"
	"rarpred/internal/runerr"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID: "fig7a",
		Title: "Figure 7(a): address locality breakdown (RAW/RAR/no " +
			"dependence) vs cloaking coverage",
		Cells: fig7Cells(false),
	})
	register(Experiment{
		ID: "fig7b",
		Title: "Figure 7(b): value locality breakdown (RAW/RAR/no " +
			"dependence) vs cloaking coverage",
		Cells: fig7Cells(true),
	})
}

// Fig7Row correlates locality (address or value, per the experiment) with
// the dependence detected per load, alongside cloaking coverage. All
// fields are fractions over all executed loads.
type Fig7Row struct {
	Workload workload.Workload

	// Left bar: loads whose consecutive executions repeat the address
	// (fig7a) or value (fig7b), split by the dependence detected on the
	// repeating execution.
	LocalRAW  float64
	LocalRAR  float64
	LocalNone float64

	// Right bar: cloaking coverage split.
	CoverageRAW float64
	CoverageRAR float64
}

// Local is the total locality fraction.
func (r Fig7Row) Local() float64 { return r.LocalRAW + r.LocalRAR + r.LocalNone }

// Coverage is the total cloaking coverage.
func (r Fig7Row) Coverage() float64 { return r.CoverageRAW + r.CoverageRAR }

// Fig7Result reproduces Figure 7(a) or 7(b).
type Fig7Result struct {
	Value bool // false: address locality (7a); true: value locality (7b)
	Rows  []Fig7Row
}

// fig7Cells stays single-sink: the locality observation and the cloaking
// outcome correlate per event, so they must walk the stream in lockstep.
func fig7Cells(value bool) CellRunner {
	return tracedCells(workload.ReferenceSize,
		func(_ Options, w workload.Workload, tr *trace.Stream) (Fig7Row, error) {
			engine := cloak.New(cloak.DefaultConfig())
			last := locality.NewLastMap()
			var loads, localRAW, localRAR, localNone uint64
			tr.Replay(trace.SinkFuncs{
				OnLoad: func(pc, addr, val uint32) {
					loads++
					word := addr
					if value {
						word = val
					}
					repeats := last.Observe(pc, word)
					out := engine.Load(pc, addr, val)
					if repeats {
						switch out.Dep {
						case cloak.DepRAW:
							localRAW++
						case cloak.DepRAR:
							localRAR++
						default:
							localNone++
						}
					}
				},
				OnStore: func(pc, addr, val uint32) { engine.Store(pc, addr, val) },
			})
			st := engine.Stats()
			return Fig7Row{
				Workload:    w,
				LocalRAW:    stats.Ratio(localRAW, loads),
				LocalRAR:    stats.Ratio(localRAR, loads),
				LocalNone:   stats.Ratio(localNone, loads),
				CoverageRAW: stats.Ratio(st.CorrectRAW, loads),
				CoverageRAR: stats.Ratio(st.CorrectRAR, loads),
			}, nil
		},
		func(_ Options, _ []workload.Workload, rows []Fig7Row, fails []*runerr.WorkloadError) (Result, error) {
			return annotate(&Fig7Result{Value: value, Rows: rows}, fails), nil
		})
}

func runFig7(opt Options, value bool) (Result, error) {
	return runCells(opt, fig7Cells(value))
}

// String renders left (locality breakdown) and right (coverage) bars.
func (r *Fig7Result) String() string {
	kind, fig := "Address", "7(a)"
	if r.Value {
		kind, fig = "Value", "7(b)"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure %s: %s locality breakdown vs cloaking coverage\n", fig, kind)
	t := stats.NewTable("prog",
		"loc RAW", "loc RAR", "loc none", "loc tot",
		"cov RAW", "cov RAR", "cov tot")
	for _, row := range r.Rows {
		t.Row(row.Workload.Abbrev,
			stats.Pct(row.LocalRAW), stats.Pct(row.LocalRAR), stats.Pct(row.LocalNone),
			stats.Pct(row.Local()),
			stats.Pct(row.CoverageRAW), stats.Pct(row.CoverageRAR), stats.Pct(row.Coverage()))
	}
	sb.WriteString(t.String())
	return sb.String()
}
