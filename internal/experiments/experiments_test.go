package experiments

import (
	"strings"
	"testing"

	"rarpred/internal/workload"
)

// tiny returns options that keep unit tests fast: small workloads.
func tiny() Options { return Options{Size: 4} }

// subset restricts to a few representative workloads.
func subset(abbrevs ...string) Options {
	opt := tiny()
	for _, a := range abbrevs {
		w, ok := workload.ByAbbrev(a)
		if !ok {
			panic("unknown workload " + a)
		}
		opt.Workloads = append(opt.Workloads, w)
	}
	return opt
}

func TestRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"abldist", "abldpnt", "ablmemspec", "ablmerge",
		"ablprofile", "ablrecovery", "ablsplit", "ablwindow", "fig10",
		"fig2", "fig5", "fig6", "fig7a", "fig7b", "fig9", "synergy",
		"table51", "table52"}
	if len(ids) != len(want) {
		t.Fatalf("ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("ids[%d] = %s, want %s", i, ids[i], want[i])
		}
	}
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok || e.ID != id || e.Title == "" || e.Run == nil {
			t.Errorf("ByID(%s) broken: %+v, %v", id, e, ok)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("unknown id resolved")
	}
}

func TestTable51(t *testing.T) {
	res, err := runTable51(tiny())
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table51Result)
	if len(r.Rows) != 18 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Counts.Insts == 0 {
			t.Errorf("%s: zero instructions", row.Workload.Name)
		}
		if lf := row.Counts.LoadFrac(); lf <= 0 || lf > 0.6 {
			t.Errorf("%s: load fraction %.2f", row.Workload.Name, lf)
		}
	}
	if !strings.Contains(r.String(), "go_like") {
		t.Error("rendering lacks workload names")
	}
}

func TestFig2LocalityIsCDF(t *testing.T) {
	res, err := runFig2(subset("gcc", "tom", "com"))
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig2Result)
	for _, row := range r.Rows {
		prev := 0.0
		for _, v := range row.Infinite {
			if v < prev || v < 0 || v > 1 {
				t.Errorf("%s: non-CDF locality %v", row.Workload.Name, row.Infinite)
			}
			prev = v
		}
	}
	// The paper's headline: locality(4) is high for programs with RAR
	// streams. gcc and tom have strong streams.
	for _, row := range r.Rows {
		if row.Workload.Abbrev == "com" {
			continue // compress has almost no RAR sinks
		}
		if row.Infinite[3] < 0.7 {
			t.Errorf("%s: locality(4) = %.2f < 0.7", row.Workload.Name, row.Infinite[3])
		}
	}
}

func TestFig5DetectionGrowsWithDDT(t *testing.T) {
	res, err := runFig5(subset("go", "vor", "hyd"))
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig5Result)
	for _, row := range r.Rows {
		first := row.Points[0]
		last := row.Points[len(row.Points)-1]
		if last.RAWFrac+last.RARFrac+1e-9 < first.RAWFrac+first.RARFrac-0.02 {
			t.Errorf("%s: total detection shrank: %v -> %v", row.Workload.Name, first, last)
		}
		// RAW detection never shrinks with a bigger DDT (LRU inclusion).
		if last.RAWFrac+1e-9 < first.RAWFrac-0.01 {
			t.Errorf("%s: RAW detection shrank with DDT size", row.Workload.Name)
		}
		if _, ok := row.Point(128); !ok {
			t.Errorf("%s: missing 128-entry point", row.Workload.Name)
		}
	}
}

func TestFig6AdaptiveCutsMisspeculation(t *testing.T) {
	res, err := runFig6(subset("go", "m88", "tom"))
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig6Result)
	for _, row := range r.Rows {
		if row.TwoBit.Misp() > row.OneBit.Misp()+1e-9 {
			t.Errorf("%s: adaptive misspeculates more (%.4f) than non-adaptive (%.4f)",
				row.Workload.Name, row.TwoBit.Misp(), row.OneBit.Misp())
		}
		if row.OneBit.Coverage()+1e-9 < row.TwoBit.Coverage()-0.02 {
			t.Errorf("%s: 1-bit coverage below 2-bit", row.Workload.Name)
		}
	}
}

func TestFig7FractionsInRange(t *testing.T) {
	for _, value := range []bool{false, true} {
		res, err := runFig7(subset("go", "hyd"), value)
		if err != nil {
			t.Fatal(err)
		}
		r := res.(*Fig7Result)
		for _, row := range r.Rows {
			if l := row.Local(); l < 0 || l > 1.0001 {
				t.Errorf("locality total %v out of range", l)
			}
			if c := row.Coverage(); c < 0 || c > 1.0001 {
				t.Errorf("coverage %v out of range", c)
			}
		}
	}
}

func TestTable52Exclusive(t *testing.T) {
	res, err := runTable52(subset("vor", "hyd"))
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Table52Result)
	for _, row := range r.Rows {
		if row.CloakOnlyTotal()+row.VPOnly > 1.0001 {
			t.Errorf("%s: exclusive fractions exceed 1", row.Workload.Name)
		}
	}
	// vor is a strong cloaking case; hyd is the paper's VP showcase.
	var vorRow, hydRow Table52Row
	for _, row := range r.Rows {
		switch row.Workload.Abbrev {
		case "vor":
			vorRow = row
		case "hyd":
			hydRow = row
		}
	}
	if vorRow.CloakOnlyTotal() <= vorRow.VPOnly {
		t.Errorf("vor: cloaking-only %.3f <= VP-only %.3f", vorRow.CloakOnlyTotal(), vorRow.VPOnly)
	}
	if hydRow.VPOnly <= hydRow.CloakOnlyTotal() {
		t.Errorf("hyd: VP-only %.3f <= cloaking-only %.3f", hydRow.VPOnly, hydRow.CloakOnlyTotal())
	}
}

func TestFig9Shapes(t *testing.T) {
	res, err := runFig9(subset("gcc", "su2"))
	if err != nil {
		t.Fatal(err)
	}
	r := res.(*Fig9Result)
	for _, row := range r.Rows {
		// The combined mechanism never loses noticeably to RAW-only.
		if row.SelRAWRAR < row.SelRAW-0.02 {
			t.Errorf("%s: RAW+RAR (%.3f) below RAW (%.3f)",
				row.Workload.Name, row.SelRAWRAR, row.SelRAW)
		}
		if row.BaseCycles == 0 {
			t.Errorf("%s: zero base cycles", row.Workload.Name)
		}
	}
	if !strings.Contains(r.String(), "Figure 9") {
		t.Error("rendering lacks title")
	}
}

func TestFig10LargerThanFig9(t *testing.T) {
	opt := subset("li", "gcc")
	r9, err := runFig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := runFig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	a := r9.(*Fig9Result)
	b := r10.(*Fig9Result)
	// The paper: speedups are significantly higher (often double) without
	// memory dependence speculation — at minimum, not smaller overall.
	if b.SelRAWRARAll < a.SelRAWRARAll-0.02 {
		t.Errorf("fig10 mean %.3f below fig9 mean %.3f", b.SelRAWRARAll, a.SelRAWRARAll)
	}
	if !strings.Contains(b.String(), "Figure 10") {
		t.Error("fig10 rendering lacks title")
	}
}

func TestAblations(t *testing.T) {
	for _, id := range []string{"ablmerge", "ablsplit", "abldpnt"} {
		e, _ := ByID(id)
		res, err := e.Run(subset("go", "su2"))
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		r := res.(*AblationResult)
		if len(r.Rows) != 2 || len(r.Rows[0].Cells) != len(r.Variants) {
			t.Errorf("%s: shape %dx%d", id, len(r.Rows), len(r.Rows[0].Cells))
		}
		for _, row := range r.Rows {
			for _, c := range row.Cells {
				if c.Coverage < 0 || c.Coverage > 1 || c.Misp < 0 || c.Misp > 1 {
					t.Errorf("%s: out-of-range cell %+v", id, c)
				}
			}
		}
		if !strings.Contains(r.String(), "Ablation") {
			t.Errorf("%s: rendering broken", id)
		}
	}
}

func TestMeansByClass(t *testing.T) {
	ws := []workload.Workload{
		{Abbrev: "a", Class: workload.Int},
		{Abbrev: "b", Class: workload.FP},
		{Abbrev: "c", Class: workload.FP},
	}
	rows := []float64{1, 2, 4}
	i, f, all := meansByClass(ws, rows, func(v float64) float64 { return v })
	if i != 1 || f != 3 || all != 7.0/3 {
		t.Errorf("means = %v %v %v", i, f, all)
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	if o.size(5) != 5 {
		t.Error("size default")
	}
	o.Size = 9
	if o.size(5) != 9 {
		t.Error("size override")
	}
	if o.parallelism() < 1 {
		t.Error("parallelism")
	}
	if len(o.workloads()) != 18 {
		t.Error("workload default")
	}
}

func TestExtensionExperiments(t *testing.T) {
	opt := subset("com", "hyd")

	memspec, err := runAblMemSpec(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range memspec.(*MemSpecResult).Rows {
		if row.NaiveIPC <= 0 || row.NoSpecIPC <= 0 || row.StoreSetsIPC <= 0 {
			t.Errorf("%s: zero IPC: %+v", row.Workload.Name, row)
		}
		// Speculation never loses to no-speculation in our model.
		if row.NaiveIPC < row.NoSpecIPC-0.01 {
			t.Errorf("%s: naive IPC %.2f below no-spec %.2f",
				row.Workload.Name, row.NaiveIPC, row.NoSpecIPC)
		}
	}

	rec, err := runAblRecovery(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rec.(*RecoveryResult).Rows {
		// The Section 5.6.1 equivalence: selective within a point of oracle.
		if d := row.Selective - row.Oracle; d > 0.01 || d < -0.01 {
			t.Errorf("%s: selective %.3f vs oracle %.3f", row.Workload.Name,
				row.Selective, row.Oracle)
		}
	}

	syn, err := runSynergy(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range syn.(*SynergyResult).Rows {
		if row.Hybrid+1e-9 < row.Cloak || row.Hybrid+1e-9 < row.VP {
			t.Errorf("%s: hybrid %.3f below a component (%.3f, %.3f)",
				row.Workload.Name, row.Hybrid, row.Cloak, row.VP)
		}
		if row.Hybrid > row.Cloak+row.VP+1e-9 {
			t.Errorf("%s: hybrid exceeds the union bound", row.Workload.Name)
		}
	}
}
