package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/locality"
	"rarpred/internal/runerr"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID: "fig2",
		Title: "Figure 2: RAR memory dependence locality (n=1..4), " +
			"infinite and 4K-entry address windows",
		Cells: fig2Cells,
	})
}

// Fig2Window is the finite address-window size of Figure 2(b).
const Fig2Window = 4096

// Fig2Row holds one workload's locality CDF under both windows.
type Fig2Row struct {
	Workload workload.Workload
	// Infinite[i] is memory-dependence-locality(i+1) with an infinite
	// address window; Windowed is the 4K-entry window variant.
	Infinite [locality.MaxDepth]float64
	Windowed [locality.MaxDepth]float64
	// SinkLoads counts dynamic sink loads under each window.
	SinkInf, SinkWin uint64
}

// Fig2Result reproduces Figure 2.
type Fig2Result struct {
	Rows []Fig2Row
}

// fig2Cells analyzes both address windows per workload, each consuming
// the immutable stream from its own goroutine (the analyzers are
// independent, so the two-variant cell uses two cores).
var fig2Cells = tracedCells(workload.ReferenceSize,
	func(_ Options, w workload.Workload, tr *trace.Stream) (Fig2Row, error) {
		inf := locality.NewRARLocality(0)
		win := locality.NewRARLocality(Fig2Window)
		tr.ReplayEach(trace.SinkFuncs{
			OnLoad:  func(pc, addr, _ uint32) { inf.Load(pc, addr) },
			OnStore: func(pc, addr, _ uint32) { inf.Store(pc, addr) },
		}, trace.SinkFuncs{
			OnLoad:  func(pc, addr, _ uint32) { win.Load(pc, addr) },
			OnStore: func(pc, addr, _ uint32) { win.Store(pc, addr) },
		})
		row := Fig2Row{Workload: w, SinkInf: inf.SinkLoads(), SinkWin: win.SinkLoads()}
		for n := 1; n <= locality.MaxDepth; n++ {
			row.Infinite[n-1] = inf.Locality(n)
			row.Windowed[n-1] = win.Locality(n)
		}
		return row, nil
	},
	func(_ Options, _ []workload.Workload, rows []Fig2Row, fails []*runerr.WorkloadError) (Result, error) {
		return annotate(&Fig2Result{Rows: rows}, fails), nil
	})

func runFig2(opt Options) (Result, error) { return runCells(opt, fig2Cells) }

// String renders both sub-figures as locality(1..4) columns.
func (r *Fig2Result) String() string {
	var sb strings.Builder
	render := func(title string, pick func(Fig2Row) [locality.MaxDepth]float64, sinks func(Fig2Row) uint64) {
		sb.WriteString(title + "\n")
		t := stats.NewTable("prog", "loc(1)", "loc(2)", "loc(3)", "loc(4)")
		for _, row := range r.Rows {
			if sinks(row) == 0 {
				// No RAR sinks at all (129.compress-like behaviour):
				// locality is undefined, not zero.
				t.Row(row.Workload.Abbrev, "-", "-", "-", "-")
				continue
			}
			l := pick(row)
			t.Row(row.Workload.Abbrev,
				stats.Pct(l[0]), stats.Pct(l[1]), stats.Pct(l[2]), stats.Pct(l[3]))
		}
		sb.WriteString(t.String())
	}
	render("Figure 2(a): RAR dependence locality, infinite address window",
		func(r Fig2Row) [locality.MaxDepth]float64 { return r.Infinite },
		func(r Fig2Row) uint64 { return r.SinkInf })
	sb.WriteByte('\n')
	render(fmt.Sprintf("Figure 2(b): RAR dependence locality, %d-entry address window", Fig2Window),
		func(r Fig2Row) [locality.MaxDepth]float64 { return r.Windowed },
		func(r Fig2Row) uint64 { return r.SinkWin })
	return sb.String()
}
