package experiments

import (
	"sync"
	"testing"

	"rarpred/internal/metrics"
	"rarpred/internal/workload"
)

// TestSuiteLPTCostTieKeepsConstructionOrder covers the cost-model tie
// (ISSUE 9 satellite): when every cell reports the same cost the stable
// sort must leave the queue in construction (experiment-major) order,
// so two runs of one suite schedule identically and a benchjson file
// and journal that agree on seconds cannot reorder anything.
func TestSuiteLPTCostTieKeepsConstructionOrder(t *testing.T) {
	ws := workload.All()[:3]
	var mu sync.Mutex
	var order []string
	exps := []Experiment{
		orderedExperiment("synthT1", &mu, &order),
		orderedExperiment("synthT2", &mu, &order),
	}
	opt := Options{
		Workloads:   ws,
		Parallelism: 1,
		CellCost:    func(exp, wl string) (float64, bool) { return 2.5, true },
	}
	renderSuite(t, opt, exps)

	want := []string{
		"synthT1/" + ws[0].Name, "synthT1/" + ws[1].Name, "synthT1/" + ws[2].Name,
		"synthT2/" + ws[0].Name, "synthT2/" + ws[1].Name, "synthT2/" + ws[2].Name,
	}
	if len(order) != len(want) {
		t.Fatalf("ran %d cells, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("tied-cost order[%d] = %s, want construction order %v", i, order[i], want)
		}
	}
}

// TestSuiteGaugesAndSpans: after a suite run the registry's gauges have
// retired every scheduled cell, the queue and busy-worker gauges are
// back to zero, the ETA cost books balance, and each cell produced a
// span observation.
func TestSuiteGaugesAndSpans(t *testing.T) {
	ws := workload.All()[:3]
	var mu sync.Mutex
	var order []string
	exps := []Experiment{
		orderedExperiment("synthG1", &mu, &order),
		orderedExperiment("synthG2", &mu, &order),
	}
	before := metrics.Default().Snapshot().Histograms["spans_ns{cell}"].Count
	renderSuite(t, Options{Workloads: ws, Parallelism: 2}, exps)

	s := metrics.Default().Snapshot()
	cells := int64(len(exps) * len(ws))
	if got := s.Gauges["suite.cells_total"]; got != cells {
		t.Fatalf("suite.cells_total = %d, want %d", got, cells)
	}
	if got := s.Gauges["suite.cells_done"]; got != cells {
		t.Fatalf("suite.cells_done = %d, want %d", got, cells)
	}
	if got := s.Gauges["suite.queue_depth"]; got != 0 {
		t.Fatalf("suite.queue_depth = %d after the run, want 0", got)
	}
	if got := s.Gauges["suite.workers_busy"]; got != 0 {
		t.Fatalf("suite.workers_busy = %d after the run, want 0", got)
	}
	if got := s.Gauges["suite.workers"]; got != 2 {
		t.Fatalf("suite.workers = %d, want 2", got)
	}
	total, done := s.Gauges["suite.cost_total_ms"], s.Gauges["suite.cost_done_ms"]
	if total != done {
		t.Fatalf("cost books unbalanced after the run: total %dms, done %dms", total, done)
	}
	// With no cost model every cell is estimated at 1s.
	if total != cells*1000 {
		t.Fatalf("suite.cost_total_ms = %d, want %d", total, cells*1000)
	}
	if got := s.Histograms["spans_ns{cell}"].Count - before; got != uint64(cells) {
		t.Fatalf("spans_ns{cell} grew by %d, want %d", got, cells)
	}
}

// TestEstimateCosts: unknown (+Inf) costs take the mean of the known
// ones, and an all-unknown slate falls back to one second per cell.
func TestEstimateCosts(t *testing.T) {
	got := estimateCosts([]float64{2, 4, inf1()})
	if got[0] != 2 || got[1] != 4 || got[2] != 3 {
		t.Fatalf("estimateCosts = %v, want [2 4 3]", got)
	}
	got = estimateCosts([]float64{inf1(), inf1()})
	if got[0] != 1 || got[1] != 1 {
		t.Fatalf("all-unknown estimateCosts = %v, want [1 1]", got)
	}
}

func inf1() float64 {
	var zero float64
	return 1 / zero
}
