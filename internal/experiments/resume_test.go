package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"rarpred/internal/runerr"
	"rarpred/internal/workload"
)

// memJournal is an in-memory SuiteJournal standing in for the store's
// durable one.
type memJournal struct {
	mu      sync.Mutex
	m       map[string][]byte
	secs    map[string]float64
	records int
}

func (j *memJournal) Lookup(exp, wl string) ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	row, ok := j.m[exp+"/"+wl]
	return row, ok
}

func (j *memJournal) Record(exp, wl string, row []byte, seconds float64) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.m == nil {
		j.m = make(map[string][]byte)
		j.secs = make(map[string]float64)
	}
	j.m[exp+"/"+wl] = row
	j.secs[exp+"/"+wl] = seconds
	j.records++
	return nil
}

// countRow is the cell output of the synthetic resume experiments.
type countRow struct {
	workload.Workload
	Value int
}

// countResult renders rows deterministically for output comparison.
type countResult struct{ lines []string }

func (r countResult) String() string { return strings.Join(r.lines, "\n") + "\n" }

// countingExperiment builds a synthetic cell-decomposed experiment whose
// cell invocations are counted, so resume can prove cells did not
// re-run.
func countingExperiment(id string, calls *atomic.Int64, fail string) Experiment {
	return Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Cells: cells(
			func(ctx context.Context, opt Options, w workload.Workload) (countRow, error) {
				calls.Add(1)
				if w.Name == fail {
					return countRow{}, errors.New("synthetic cell failure")
				}
				return countRow{Workload: w, Value: len(w.Name) + len(id)}, nil
			},
			func(opt Options, ws []workload.Workload, rows []countRow, fails []*runerr.WorkloadError) (Result, error) {
				res := countResult{}
				for _, r := range rows {
					res.lines = append(res.lines, fmt.Sprintf("%s %s=%d", id, r.Name, r.Value))
				}
				return annotate(res, fails), nil
			},
		),
	}
}

// renderSuite runs the suite and returns the concatenated rendered
// output plus per-experiment cell stats.
func renderSuite(t *testing.T, opt Options, exps []Experiment) (string, [][]CellStat) {
	t.Helper()
	var sb strings.Builder
	var cellStats [][]CellStat
	RunSuite(opt, exps, func(item SuiteItem) bool {
		if item.Err != nil {
			t.Fatalf("suite item %s failed: %v", item.Exp.ID, item.Err)
		}
		fmt.Fprintf(&sb, "== %s\n%s", item.Exp.ID, item.Result.String())
		cellStats = append(cellStats, item.Cells)
		return true
	})
	return sb.String(), cellStats
}

func TestSuiteResumeSkipsJournaledCells(t *testing.T) {
	ws := workload.All()[:5]
	jnl := &memJournal{}
	var calls1, calls2 atomic.Int64
	opt := Options{Workloads: ws, Journal: jnl}

	ref, _ := renderSuite(t, opt, []Experiment{
		countingExperiment("synthA", &calls1, ""),
		countingExperiment("synthB", &calls1, ""),
	})
	if got, want := calls1.Load(), int64(2*len(ws)); got != want {
		t.Fatalf("first run invoked %d cells, want %d", got, want)
	}
	if jnl.records != 2*len(ws) {
		t.Fatalf("first run journaled %d cells, want %d", jnl.records, 2*len(ws))
	}

	// Second run over the same journal: every cell replays, none run,
	// and the rendered output is byte-identical.
	out, stats := renderSuite(t, opt, []Experiment{
		countingExperiment("synthA", &calls2, ""),
		countingExperiment("synthB", &calls2, ""),
	})
	if calls2.Load() != 0 {
		t.Fatalf("resumed run invoked %d cells, want 0", calls2.Load())
	}
	if out != ref {
		t.Fatalf("resumed output differs:\n--- fresh ---\n%s--- resumed ---\n%s", ref, out)
	}
	for _, cs := range stats {
		for _, c := range cs {
			if !c.Resumed {
				t.Fatalf("cell %s not marked Resumed", c.Workload)
			}
		}
	}
}

// TestSuiteResumePartialJournal: only some cells journaled — the rest
// run, and the combined output matches an uninterrupted run.
func TestSuiteResumePartialJournal(t *testing.T) {
	ws := workload.All()[:6]
	var refCalls atomic.Int64
	ref, _ := renderSuite(t, Options{Workloads: ws}, []Experiment{
		countingExperiment("synthC", &refCalls, ""),
	})

	// Journal only the even-indexed workloads, as an interrupted run
	// might have.
	jnl := &memJournal{}
	var firstCalls atomic.Int64
	first := countingExperiment("synthC", &firstCalls, "")
	codec := first.Cells.(RowCodec)
	for i, w := range ws {
		if i%2 != 0 {
			continue
		}
		row, err := first.Cells.Cell(context.Background(), Options{}, w)
		if err != nil {
			t.Fatal(err)
		}
		enc, err := codec.EncodeRow(row)
		if err != nil {
			t.Fatal(err)
		}
		jnl.Record("synthC", w.Name, enc, 1)
	}

	var resumedCalls atomic.Int64
	out, stats := renderSuite(t, Options{Workloads: ws, Journal: jnl},
		[]Experiment{countingExperiment("synthC", &resumedCalls, "")})
	if out != ref {
		t.Fatalf("partially resumed output differs:\n--- fresh ---\n%s--- resumed ---\n%s", ref, out)
	}
	if got, want := resumedCalls.Load(), int64(len(ws)/2); got != want {
		t.Fatalf("partial resume invoked %d cells, want %d", got, want)
	}
	resumed := 0
	for _, c := range stats[0] {
		if c.Resumed {
			resumed++
		}
	}
	if resumed != (len(ws)+1)/2 {
		t.Fatalf("%d cells marked Resumed, want %d", resumed, (len(ws)+1)/2)
	}
}

// TestSuiteResumeFailedCellsRerun: failures are never journaled, so a
// resumed run retries them — and, the fault now gone, succeeds.
func TestSuiteResumeFailedCellsRerun(t *testing.T) {
	ws := workload.All()[:4]
	bad := ws[2].Name
	jnl := &memJournal{}
	var calls atomic.Int64

	var sawPartial bool
	RunSuite(Options{Workloads: ws, Journal: jnl},
		[]Experiment{countingExperiment("synthD", &calls, bad)},
		func(item SuiteItem) bool {
			if item.Err != nil {
				t.Fatalf("suite failed outright: %v", item.Err)
			}
			_, sawPartial = item.Result.(*PartialResult)
			return true
		})
	if !sawPartial {
		t.Fatal("failing cell did not produce a partial result")
	}
	if jnl.records != len(ws)-1 {
		t.Fatalf("journaled %d cells, want %d (failures excluded)", jnl.records, len(ws)-1)
	}

	// Resume without the injected failure: only the failed cell runs.
	var retryCalls atomic.Int64
	out, _ := renderSuite(t, Options{Workloads: ws, Journal: jnl},
		[]Experiment{countingExperiment("synthD", &retryCalls, "")})
	if retryCalls.Load() != 1 {
		t.Fatalf("resume invoked %d cells, want 1 (the previously failed one)", retryCalls.Load())
	}
	var refCalls atomic.Int64
	ref, _ := renderSuite(t, Options{Workloads: ws},
		[]Experiment{countingExperiment("synthD", &refCalls, "")})
	if out != ref {
		t.Fatalf("healed resume differs from clean run:\n%s\nvs\n%s", out, ref)
	}
}

// TestSuiteResumeUndecodableRowReruns: a journal row the codec cannot
// decode (foreign layout) silently re-runs the cell instead of failing
// the suite.
func TestSuiteResumeUndecodableRowReruns(t *testing.T) {
	ws := workload.All()[:3]
	jnl := &memJournal{}
	for _, w := range ws {
		jnl.Record("synthE", w.Name, []byte("not a gob row"), 1)
	}
	var calls atomic.Int64
	renderSuite(t, Options{Workloads: ws, Journal: jnl},
		[]Experiment{countingExperiment("synthE", &calls, "")})
	if got, want := calls.Load(), int64(len(ws)); got != want {
		t.Fatalf("undecodable rows: %d cells ran, want %d", got, want)
	}
}

// TestRowCodecWorkloadRehydrates: a row's embedded Workload survives the
// gob round trip with its registry identity intact — including the
// unexported build function, restored by name.
func TestRowCodecWorkloadRehydrates(t *testing.T) {
	w := workload.All()[0]
	var calls atomic.Int64
	e := countingExperiment("synthF", &calls, "")
	codec := e.Cells.(RowCodec)
	enc, err := codec.EncodeRow(countRow{Workload: w, Value: 9})
	if err != nil {
		t.Fatal(err)
	}
	back, err := codec.DecodeRow(enc)
	if err != nil {
		t.Fatal(err)
	}
	row := back.(countRow)
	if row.Name != w.Name || row.Abbrev != w.Abbrev || row.Value != 9 {
		t.Fatalf("row drifted: %+v", row)
	}
	// The decoded workload must still assemble (build rehydrated from
	// the registry by name).
	if p := row.Program(4); p == nil {
		t.Fatal("decoded workload cannot assemble")
	}
}
