package experiments

import (
	"fmt"
	"strings"

	"rarpred/internal/cloak"
	"rarpred/internal/runerr"
	"rarpred/internal/stats"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

func init() {
	register(Experiment{
		ID: "fig6",
		Title: "Figure 6: cloaking coverage and misspeculation, 1-bit vs " +
			"2-bit confidence, RAW/RAR breakdown (128-entry DDT, infinite DPNT)",
		Cells: fig6Cells,
	})
}

// Fig6Cell is one predictor's accuracy for one workload. All values are
// fractions over all executed loads.
type Fig6Cell struct {
	CoverageRAW float64
	CoverageRAR float64
	MispRAW     float64
	MispRAR     float64
}

// Coverage is the total fraction of loads with a correct speculative value.
func (c Fig6Cell) Coverage() float64 { return c.CoverageRAW + c.CoverageRAR }

// Misp is the total misspeculation rate.
func (c Fig6Cell) Misp() float64 { return c.MispRAW + c.MispRAR }

// Fig6Row holds one workload's accuracy under both confidence mechanisms.
type Fig6Row struct {
	Workload workload.Workload
	OneBit   Fig6Cell // non-adaptive upper bound
	TwoBit   Fig6Cell // adaptive automaton
}

// Fig6Result reproduces Figure 6.
type Fig6Result struct {
	Rows []Fig6Row
	// Class means of the adaptive predictor, as quoted in the paper's text.
	MispIntTwoBit, MispFPTwoBit, MispAllTwoBit float64
	CovIntTwoBit, CovFPTwoBit, CovAllTwoBit    float64
}

func cellFrom(st cloak.Stats) Fig6Cell {
	return Fig6Cell{
		CoverageRAW: stats.Ratio(st.CorrectRAW, st.Loads),
		CoverageRAR: stats.Ratio(st.CorrectRAR, st.Loads),
		MispRAW:     stats.Ratio(st.WrongRAW, st.Loads),
		MispRAR:     stats.Ratio(st.WrongRAR, st.Loads),
	}
}

// fig6Cells runs the 1-bit and 2-bit engines on separate goroutines over
// the shared immutable stream.
var fig6Cells = tracedCells(workload.ReferenceSize,
	func(_ Options, w workload.Workload, tr *trace.Stream) (Fig6Row, error) {
		cfg1 := cloak.DefaultConfig()
		cfg1.Confidence = cloak.NonAdaptive1Bit
		cfg2 := cloak.DefaultConfig()
		e1 := cloak.New(cfg1)
		e2 := cloak.New(cfg2)
		tr.ReplayEach(trace.SinkFuncs{
			OnLoad:  func(pc, addr, value uint32) { e1.Load(pc, addr, value) },
			OnStore: func(pc, addr, value uint32) { e1.Store(pc, addr, value) },
		}, trace.SinkFuncs{
			OnLoad:  func(pc, addr, value uint32) { e2.Load(pc, addr, value) },
			OnStore: func(pc, addr, value uint32) { e2.Store(pc, addr, value) },
		})
		return Fig6Row{
			Workload: w,
			OneBit:   cellFrom(e1.Stats()),
			TwoBit:   cellFrom(e2.Stats()),
		}, nil
	},
	func(_ Options, ws []workload.Workload, rows []Fig6Row, fails []*runerr.WorkloadError) (Result, error) {
		res := &Fig6Result{Rows: rows}
		res.MispIntTwoBit, res.MispFPTwoBit, res.MispAllTwoBit =
			meansByClass(ws, rows, func(r Fig6Row) float64 { return r.TwoBit.Misp() })
		res.CovIntTwoBit, res.CovFPTwoBit, res.CovAllTwoBit =
			meansByClass(ws, rows, func(r Fig6Row) float64 { return r.TwoBit.Coverage() })
		return annotate(res, fails), nil
	})

func runFig6(opt Options) (Result, error) { return runCells(opt, fig6Cells) }

// String renders coverage (part a) and misspeculation (part b), one pair
// of bars (1-bit, 2-bit) per program, split RAW/RAR as in the paper.
func (r *Fig6Result) String() string {
	var sb strings.Builder
	sb.WriteString("Figure 6(a): cloaking coverage (fractions over all loads)\n")
	ta := stats.NewTable("prog", "1b RAW", "1b RAR", "1b tot", "2b RAW", "2b RAR", "2b tot", "2b coverage")
	for _, row := range r.Rows {
		ta.Row(row.Workload.Abbrev,
			stats.Pct(row.OneBit.CoverageRAW), stats.Pct(row.OneBit.CoverageRAR),
			stats.Pct(row.OneBit.Coverage()),
			stats.Pct(row.TwoBit.CoverageRAW), stats.Pct(row.TwoBit.CoverageRAR),
			stats.Pct(row.TwoBit.Coverage()),
			stats.Bar(row.TwoBit.Coverage(), 16))
	}
	sb.WriteString(ta.String())
	sb.WriteString("\nFigure 6(b): misspeculation rates (fractions over all loads)\n")
	tb := stats.NewTable("prog", "1b RAW", "1b RAR", "1b tot", "2b RAW", "2b RAR", "2b tot")
	for _, row := range r.Rows {
		tb.Row(row.Workload.Abbrev,
			stats.Pct2(row.OneBit.MispRAW), stats.Pct2(row.OneBit.MispRAR),
			stats.Pct2(row.OneBit.Misp()),
			stats.Pct2(row.TwoBit.MispRAW), stats.Pct2(row.TwoBit.MispRAR),
			stats.Pct2(row.TwoBit.Misp()))
	}
	sb.WriteString(tb.String())
	fmt.Fprintf(&sb, "\nAdaptive (2-bit) means: coverage INT %s FP %s ALL %s; "+
		"misspeculation INT %s FP %s ALL %s\n",
		stats.Pct(r.CovIntTwoBit), stats.Pct(r.CovFPTwoBit), stats.Pct(r.CovAllTwoBit),
		stats.Pct2(r.MispIntTwoBit), stats.Pct2(r.MispFPTwoBit), stats.Pct2(r.MispAllTwoBit))
	return sb.String()
}
