// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 2 and Section 5). Each experiment is registered
// under the paper's table/figure id (table51, fig2, fig5, fig6, fig7a,
// fig7b, table52, fig9, fig10) plus this repository's ablations, and
// prints rows/series in the paper's layout so results can be compared
// side by side (see EXPERIMENTS.md).
package experiments

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"rarpred/internal/faultsim"
	"rarpred/internal/funcsim"
	"rarpred/internal/runerr"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

// Options parameterises an experiment run.
type Options struct {
	// Size is the workload size parameter (0 selects each experiment's
	// default: workload.ReferenceSize for accuracy studies,
	// workload.TimingSize for the cycle-level studies).
	Size int

	// Workloads restricts the suite (nil = all 18 analogs).
	Workloads []workload.Workload

	// MaxInsts bounds each functional run as a safety net (0 = default).
	MaxInsts uint64

	// Parallelism bounds concurrent workload simulations (0 = GOMAXPROCS).
	Parallelism int

	// Live forces the functional experiments onto the pre-cache path:
	// each experiment assembles its workloads fresh and re-simulates them
	// with the baseline Step interpreter over paged memory, instead of
	// replaying the shared memory-trace cache. The results are identical
	// either way (both paths commit the exact same stream); Live exists so
	// the equivalence can be asserted and the pipeline's speedup measured
	// against the costs it removed.
	Live bool

	// Context cancels the whole run: simulators poll it every
	// funcsim.InterruptEvery committed instructions and the runner
	// aborts (hard error, no partial result) once it is done. nil means
	// context.Background().
	Context context.Context

	// WorkloadTimeout bounds each workload's simulation inside an
	// experiment. An exceeded deadline fails only that workload — it is
	// collected as a runerr.ErrDeadline failure while the rest of the
	// suite completes (0 = no per-workload bound).
	WorkloadTimeout time.Duration
}

func (o Options) workloads() []workload.Workload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return workload.All()
}

func (o Options) size(def int) int {
	if o.Size > 0 {
		return o.Size
	}
	return def
}

func (o Options) maxInsts() uint64 {
	if o.MaxInsts > 0 {
		return o.MaxInsts
	}
	return 2_000_000_000
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Result is what every experiment produces: a rendered, paper-layout
// report. Concrete result types expose the underlying numbers.
type Result interface{ fmt.Stringer }

// PartialResult wraps an experiment's Result when one or more workloads
// failed: the embedded Result covers the survivors and Fails carries one
// typed error per failed workload (each a runerr.WorkloadError stamped
// with the experiment id). String renders the underlying report followed
// by the failure annotations, so partial output is never mistaken for a
// complete run.
type PartialResult struct {
	Result
	Fails []*runerr.WorkloadError
}

// Failures returns the per-workload errors behind the annotations.
func (p *PartialResult) Failures() []*runerr.WorkloadError { return p.Fails }

// String renders the survivors' report plus one annotation per failure.
func (p *PartialResult) String() string {
	var sb strings.Builder
	sb.WriteString(p.Result.String())
	fmt.Fprintf(&sb, "!! partial result: %d workload(s) failed\n", len(p.Fails))
	for _, f := range p.Fails {
		msg := f.Error()
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..." // keep panic stacks out of the report
		}
		fmt.Fprintf(&sb, "!!   %s\n", msg)
	}
	return sb.String()
}

// annotate wraps res as partial when any workload failed.
func annotate(res Result, fails []*runerr.WorkloadError) Result {
	if len(fails) == 0 {
		return res
	}
	return &PartialResult{Result: res, Fails: fails}
}

// Experiment is one runnable reproduction of a paper table or figure.
type Experiment struct {
	// ID is the paper's identifier (e.g. "fig6") or an ablation id.
	ID string
	// Title describes what the paper reports there.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

var registry []Experiment

// register adds e to the registry with its Run wrapped so every error
// leaving the experiment layer is attributed: hard errors gain the
// experiment id prefix and per-workload failures in a PartialResult are
// stamped with it (completing the runerr.WorkloadError taxonomy).
func register(e Experiment) {
	id, run := e.ID, e.Run
	e.Run = func(opt Options) (Result, error) {
		res, err := run(opt)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", id, err)
		}
		if p, ok := res.(*PartialResult); ok {
			for _, f := range p.Fails {
				if f.Experiment == "" {
					f.Experiment = id
				}
			}
		}
		return res, nil
	}
	registry = append(registry, e)
}

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// runWorkloads is the resilient core every experiment drives its suite
// through: fn runs once per workload, in parallel, under the run context
// plus any per-workload deadline. Each worker is isolated — a panic is
// recovered into a typed runerr.ErrWorkloadPanic, a missed deadline into
// runerr.ErrDeadline — and failures are collected instead of aborting on
// the first, so the suite always produces every row it can.
//
// Returns the surviving rows with their workloads (suite order,
// index-aligned) and the failures. The error return is reserved for hard
// aborts: the run context ending, or every workload failing.
func runWorkloads[T any](opt Options, fn func(ctx context.Context, w workload.Workload) (T, error)) ([]T, []workload.Workload, []*runerr.WorkloadError, error) {
	ctx := opt.ctx()
	ws := opt.workloads()
	rows := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = runerr.FromPanic(w.Name, r, debug.Stack())
				}
			}()
			wctx := ctx
			if opt.WorkloadTimeout > 0 {
				var cancel context.CancelFunc
				wctx, cancel = context.WithTimeout(ctx, opt.WorkloadTimeout)
				defer cancel()
			}
			rows[i], errs[i] = fn(wctx, w)
		}(i, w)
	}
	wg.Wait()

	// The run itself ending is a hard abort, not a per-workload failure:
	// whatever rows completed are moot because the caller is going away.
	if err := ctx.Err(); err != nil {
		return nil, nil, nil, runerr.Classify(err)
	}

	var (
		outRows []T
		outWs   []workload.Workload
		fails   []*runerr.WorkloadError
	)
	for i, w := range ws {
		if errs[i] == nil {
			outRows = append(outRows, rows[i])
			outWs = append(outWs, w)
			continue
		}
		fails = append(fails, runerr.New(w.Name, runerr.Classify(errs[i])))
	}
	if len(outRows) == 0 && len(fails) > 0 {
		joined := make([]error, len(fails))
		for i, f := range fails {
			joined[i] = f
		}
		return nil, nil, nil, fmt.Errorf("every workload failed: %w", errors.Join(joined...))
	}
	return outRows, outWs, fails, nil
}

// forEachWorkload runs fn once per workload over a fresh functional
// simulator (for experiments that need live register state rather than
// the recorded stream), with runWorkloads' isolation and error
// collection.
func forEachWorkload[T any](opt Options, size int, fn func(w workload.Workload, prog *funcsim.Sim) (T, error)) ([]T, []workload.Workload, []*runerr.WorkloadError, error) {
	return runWorkloads(opt, func(ctx context.Context, w workload.Workload) (T, error) {
		return fn(w, funcsim.New(w.Program(size)))
	})
}

// traceCache is the process-wide store of committed reference streams.
// Every functional experiment in a run (and every run in a process)
// shares it, so `rarsim -exp all` simulates each workload once and
// replays the stream into every analyzer.
var traceCache = trace.NewCache(trace.DefaultBudget)

// TraceCache exposes the shared stream cache (for budget control and
// statistics reporting in cmd/rarsim).
func TraceCache() *trace.Cache { return traceCache }

// forEachWorkloadTraced is the trace-backed sibling of forEachWorkload,
// used by every experiment that only consumes the committed memory
// reference stream (all the non-timing experiments; the Section 5.6
// cycle-level studies need full register-state simulation and keep the
// live path). fn receives the workload and its recorded stream, obtained
// from the shared cache — recorded on first use, replayed thereafter.
// opt.Live bypasses the cache and re-records.
func forEachWorkloadTraced[T any](opt Options, size int, fn func(w workload.Workload, tr *trace.Stream) (T, error)) ([]T, []workload.Workload, []*runerr.WorkloadError, error) {
	maxInsts := opt.maxInsts()
	return runWorkloads(opt, func(ctx context.Context, w workload.Workload) (T, error) {
		var zero T
		tr, err := workloadStream(ctx, opt, w, size, maxInsts)
		if err != nil {
			return zero, err
		}
		return fn(w, tr)
	})
}

// workloadStream obtains one workload's committed reference stream under
// the resilience policy. The degradation order on the cached path is:
// shared cache -> (corrupt stream? drop the poisoned entry and re-record
// live with the baseline interpreter) -> error, which the caller records
// as an annotated per-workload failure. Fault-injection hooks
// (faultsim) reach the interpreter through the record closure, so
// injected panics, stalls, and corruption exercise exactly the paths a
// real crash would take.
func workloadStream(ctx context.Context, opt Options, w workload.Workload, size int, maxInsts uint64) (*trace.Stream, error) {
	if opt.Live {
		// The pre-cache harness re-assembled the workload and
		// Step-interpreted it over paged memory for every experiment;
		// model all three costs.
		tr, err := trace.RecordStreamBaselineContext(ctx, w.Assemble(size), maxInsts)
		if err != nil {
			return nil, err
		}
		if tr.Truncated {
			return nil, funcsim.ErrMaxInsts
		}
		return tr, nil
	}

	key := trace.Key{Workload: w.Name, Size: size, MaxInsts: maxInsts}
	record := func() (*trace.Stream, error) {
		tr, err := trace.RecordStreamContext(ctx, w.Program(size), maxInsts, faultsim.Hook(w.Name, ctx))
		if err == nil && faultsim.Enabled() && faultsim.ShouldCorrupt(w.Name) {
			// One spurious event desynchronises the tally from the
			// execution profile, which Validate below must catch.
			tr.Append(trace.KindLoad, 0, 0, 0)
		}
		return tr, err
	}
	tr, err := traceCache.GetContext(ctx, key, record)
	if err == nil {
		if verr := tr.Validate(); verr != nil {
			// Graceful degradation: never serve a corrupt stream. Drop
			// the poisoned entry so later lookups re-record, and retry
			// live on the independent baseline interpreter before
			// declaring the workload failed.
			traceCache.Drop(key)
			tr, err = trace.RecordStreamBaselineContext(ctx, w.Assemble(size), maxInsts)
			if err == nil {
				err = tr.Validate()
			}
			if err != nil {
				err = fmt.Errorf("%w; live re-record also failed: %w", verr, err)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if tr.Truncated {
		return nil, funcsim.ErrMaxInsts
	}
	return tr, nil
}

// meansByClass computes the SPECint, SPECfp and overall arithmetic means
// of a metric extracted from each row.
func meansByClass[T any](ws []workload.Workload, rows []T, metric func(T) float64) (intMean, fpMean, all float64) {
	var si, sf, sa float64
	var ni, nf int
	for i, w := range ws {
		v := metric(rows[i])
		sa += v
		if w.Class == workload.Int {
			si += v
			ni++
		} else {
			sf += v
			nf++
		}
	}
	if ni > 0 {
		intMean = si / float64(ni)
	}
	if nf > 0 {
		fpMean = sf / float64(nf)
	}
	if len(ws) > 0 {
		all = sa / float64(len(ws))
	}
	return
}
