// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 2 and Section 5). Each experiment is registered
// under the paper's table/figure id (table51, fig2, fig5, fig6, fig7a,
// fig7b, table52, fig9, fig10) plus this repository's ablations, and
// prints rows/series in the paper's layout so results can be compared
// side by side (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rarpred/internal/funcsim"
	"rarpred/internal/workload"
)

// Options parameterises an experiment run.
type Options struct {
	// Size is the workload size parameter (0 selects each experiment's
	// default: workload.ReferenceSize for accuracy studies,
	// workload.TimingSize for the cycle-level studies).
	Size int

	// Workloads restricts the suite (nil = all 18 analogs).
	Workloads []workload.Workload

	// MaxInsts bounds each functional run as a safety net (0 = default).
	MaxInsts uint64

	// Parallelism bounds concurrent workload simulations (0 = GOMAXPROCS).
	Parallelism int
}

func (o Options) workloads() []workload.Workload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return workload.All()
}

func (o Options) size(def int) int {
	if o.Size > 0 {
		return o.Size
	}
	return def
}

func (o Options) maxInsts() uint64 {
	if o.MaxInsts > 0 {
		return o.MaxInsts
	}
	return 2_000_000_000
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is what every experiment produces: a rendered, paper-layout
// report. Concrete result types expose the underlying numbers.
type Result interface{ fmt.Stringer }

// Experiment is one runnable reproduction of a paper table or figure.
type Experiment struct {
	// ID is the paper's identifier (e.g. "fig6") or an ablation id.
	ID string
	// Title describes what the paper reports there.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// forEachWorkload runs fn once per workload, in parallel, preserving
// suite order in the returned slice. fn receives the workload and its
// assembled program and returns an experiment-specific row.
func forEachWorkload[T any](opt Options, size int, fn func(w workload.Workload, prog *funcsim.Sim) (T, error)) ([]T, error) {
	ws := opt.workloads()
	rows := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sim := funcsim.New(w.Program(size))
			rows[i], errs[i] = fn(w, sim)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// meansByClass computes the SPECint, SPECfp and overall arithmetic means
// of a metric extracted from each row.
func meansByClass[T any](ws []workload.Workload, rows []T, metric func(T) float64) (intMean, fpMean, all float64) {
	var si, sf, sa float64
	var ni, nf int
	for i, w := range ws {
		v := metric(rows[i])
		sa += v
		if w.Class == workload.Int {
			si += v
			ni++
		} else {
			sf += v
			nf++
		}
	}
	if ni > 0 {
		intMean = si / float64(ni)
	}
	if nf > 0 {
		fpMean = sf / float64(nf)
	}
	if len(ws) > 0 {
		all = sa / float64(len(ws))
	}
	return
}
