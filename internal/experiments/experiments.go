// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 2 and Section 5). Each experiment is registered
// under the paper's table/figure id (table51, fig2, fig5, fig6, fig7a,
// fig7b, table52, fig9, fig10) plus this repository's ablations, and
// prints rows/series in the paper's layout so results can be compared
// side by side (see EXPERIMENTS.md).
package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"rarpred/internal/faultsim"
	"rarpred/internal/funcsim"
	"rarpred/internal/runerr"
	"rarpred/internal/supervise"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

// Options parameterises an experiment run.
type Options struct {
	// Size is the workload size parameter (0 selects each experiment's
	// default: workload.ReferenceSize for accuracy studies,
	// workload.TimingSize for the cycle-level studies).
	Size int

	// Workloads restricts the suite (nil = all 18 analogs).
	Workloads []workload.Workload

	// MaxInsts bounds each functional run as a safety net (0 = default).
	MaxInsts uint64

	// Parallelism bounds concurrent workload simulations (0 = GOMAXPROCS).
	Parallelism int

	// Live forces the functional experiments onto the pre-cache path:
	// each experiment assembles its workloads fresh and re-simulates them
	// with the baseline Step interpreter over paged memory, instead of
	// replaying the shared memory-trace cache. The results are identical
	// either way (both paths commit the exact same stream); Live exists so
	// the equivalence can be asserted and the pipeline's speedup measured
	// against the costs it removed.
	Live bool

	// Context cancels the whole run: simulators poll it every
	// funcsim.InterruptEvery committed instructions and the runner
	// aborts (hard error, no partial result) once it is done. nil means
	// context.Background().
	Context context.Context

	// WorkloadTimeout bounds each workload's simulation inside an
	// experiment. An exceeded deadline fails only that workload — it is
	// collected as a runerr.ErrDeadline failure while the rest of the
	// suite completes (0 = no per-workload bound).
	WorkloadTimeout time.Duration

	// Journal, when non-nil, makes the suite run resumable: RunSuite
	// consults it before scheduling each (experiment × workload) cell —
	// a journaled cell's row is decoded and delivered without
	// re-simulation — and records each successfully completed cell's
	// encoded row as it retires. The implementation lives in
	// internal/store; this seam keeps experiments free of the
	// persistence layer.
	Journal SuiteJournal

	// CellCost, when non-nil, estimates one (experiment × workload)
	// cell's runtime in seconds so RunSuite can order its job queue
	// longest-processing-time-first, shrinking the makespan tail where a
	// long cell picked up last overhangs an otherwise drained pool. The
	// second return reports whether an estimate exists; cells with no
	// estimate sort ahead of estimated ones (an unknown cell may be the
	// one that must record a stream — starting it early is the safe
	// bet). Ordering changes only which worker runs a cell when; results
	// still assemble and deliver in suite order, so output is
	// byte-identical with or without it. nil keeps construction order.
	CellCost func(exp, workload string) (float64, bool)

	// Supervise, when non-nil, routes every suite cell through the
	// self-healing layer: a stall watchdog preempts cells whose
	// heartbeat goes silent, failed cells retry under per-cell and
	// global budgets (with crash-loop quarantine), and the admission
	// gate holds workers back under memory backpressure. nil runs cells
	// bare, exactly as before supervision existed. Only RunSuite
	// consults it; standalone Experiment.Run does not.
	Supervise *supervise.Supervisor

	// Check arms the run's differential oracle: the first time each
	// cached reference stream is served, it is re-recorded live on the
	// independent baseline interpreter and the two streams compared
	// event by event (trace.DiffStreams). A divergence fails the
	// workload with the first differing event. The cloak/pipeline
	// invariant sweeps are armed separately via their packages'
	// SetSelfCheck (cmd/rarsim -check does both).
	Check bool
}

func (o Options) workloads() []workload.Workload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return workload.All()
}

func (o Options) size(def int) int {
	if o.Size > 0 {
		return o.Size
	}
	return def
}

func (o Options) maxInsts() uint64 {
	if o.MaxInsts > 0 {
		return o.MaxInsts
	}
	return 2_000_000_000
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) ctx() context.Context {
	if o.Context != nil {
		return o.Context
	}
	return context.Background()
}

// Result is what every experiment produces: a rendered, paper-layout
// report. Concrete result types expose the underlying numbers.
type Result interface{ fmt.Stringer }

// PartialResult wraps an experiment's Result when one or more workloads
// failed: the embedded Result covers the survivors and Fails carries one
// typed error per failed workload (each a runerr.WorkloadError stamped
// with the experiment id). String renders the underlying report followed
// by the failure annotations, so partial output is never mistaken for a
// complete run.
type PartialResult struct {
	Result
	Fails []*runerr.WorkloadError
}

// Failures returns the per-workload errors behind the annotations.
func (p *PartialResult) Failures() []*runerr.WorkloadError { return p.Fails }

// String renders the survivors' report plus one annotation per failure.
func (p *PartialResult) String() string {
	var sb strings.Builder
	sb.WriteString(p.Result.String())
	fmt.Fprintf(&sb, "!! partial result: %d workload(s) failed\n", len(p.Fails))
	for _, f := range p.Fails {
		msg := f.Error()
		if i := strings.IndexByte(msg, '\n'); i >= 0 {
			msg = msg[:i] + " ..." // keep panic stacks out of the report
		}
		fmt.Fprintf(&sb, "!!   %s\n", msg)
	}
	return sb.String()
}

// annotate wraps res as partial when any workload failed.
func annotate(res Result, fails []*runerr.WorkloadError) Result {
	if len(fails) == 0 {
		return res
	}
	return &PartialResult{Result: res, Fails: fails}
}

// Experiment is one runnable reproduction of a paper table or figure.
type Experiment struct {
	// ID is the paper's identifier (e.g. "fig6") or an ablation id.
	ID string
	// Title describes what the paper reports there.
	Title string
	// Run executes the experiment standalone (derived from Cells at
	// registration when nil: a private workload pool plus Assemble).
	Run func(Options) (Result, error)
	// Cells decomposes the experiment into independent per-workload
	// units, letting the suite scheduler pool them with every other
	// experiment's cells (see RunSuite).
	Cells CellRunner
}

var registry []Experiment

// register adds e to the registry. A nil Run is derived from Cells, and
// Run is wrapped so every error leaving the experiment layer is
// attributed: hard errors gain the experiment id prefix and
// per-workload failures in a PartialResult are stamped with it
// (completing the runerr.WorkloadError taxonomy).
func register(e Experiment) {
	if e.Run == nil && e.Cells != nil {
		r := e.Cells
		e.Run = func(opt Options) (Result, error) { return runCells(opt, r) }
	}
	id, run := e.ID, e.Run
	e.Run = func(opt Options) (Result, error) {
		res, err := run(opt)
		return stamp(id, res, err)
	}
	registry = append(registry, e)
}

// stamp attributes an experiment's outcome to its id: hard errors gain
// the id prefix, per-workload failures inside a PartialResult are
// stamped with it. Both the standalone Run wrapper and the suite
// scheduler funnel through here, so attribution is identical on either
// path.
func stamp(id string, res Result, err error) (Result, error) {
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	if p, ok := res.(*PartialResult); ok {
		for _, f := range p.Fails {
			if f.Experiment == "" {
				f.Experiment = id
			}
		}
	}
	return res, nil
}

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// CellRunner decomposes an experiment into independent per-workload
// cells plus an assembly step. It is the contract the suite scheduler
// pools work through: one (experiment × workload) cell is the unit of
// scheduling, and Assemble turns the surviving cells back into the
// experiment's paper-layout Result. Cell must be safe to call for
// different workloads concurrently.
type CellRunner interface {
	// Cell runs the experiment's unit of work for one workload under
	// ctx (the run context plus any per-workload deadline).
	Cell(ctx context.Context, opt Options, w workload.Workload) (any, error)
	// Assemble combines the surviving cells (suite order, index-aligned
	// with ws) and the per-workload failures into the Result.
	Assemble(opt Options, ws []workload.Workload, rows []any, fails []*runerr.WorkloadError) (Result, error)
}

// SuiteJournal is the resume seam between the suite scheduler and the
// durable run journal. Lookup returns the encoded row a previous run
// journaled for one cell; Record durably appends a cell that just
// completed. Both must be safe for concurrent use. Only successful
// cells are journaled — failures re-run on resume, because a failure
// may have been environmental (deadline, fault) and deserves a fresh
// attempt.
type SuiteJournal interface {
	Lookup(exp, workload string) ([]byte, bool)
	// Record appends one completed cell: its encoded row plus the wall
	// seconds the cell took, which future runs can feed back through
	// Options.CellCost to schedule longest-first.
	Record(exp, workload string, row []byte, seconds float64) error
}

// RowCodec is implemented by cell runners whose rows can round-trip
// through the suite run journal. The typed cellRunner implements it
// with gob over the concrete row type, so every experiment built from
// cells/tracedCells/timingCells journals for free; a runner without the
// interface simply is not journaled (its cells re-run on resume).
type RowCodec interface {
	// EncodeRow serializes one cell's row (as returned by Cell).
	EncodeRow(row any) ([]byte, error)
	// DecodeRow reverses EncodeRow into the concrete row type Assemble
	// expects.
	DecodeRow(data []byte) (any, error)
}

// StreamKeyer is implemented by cell runners whose cells consume the
// recorded reference stream. The suite scheduler uses it to draw the
// dependency edge from each pending cell to its workload's stream,
// pinning the trace-cache entry (trace.Cache.Retain) until the cell has
// run so eviction never drops a stream that is still needed.
type StreamKeyer interface {
	// StreamKey returns the trace-cache key the cell will consume, or
	// ok=false when the run bypasses the cache (Options.Live).
	StreamKey(opt Options, w workload.Workload) (key trace.Key, ok bool)
}

// cellRunner adapts a typed per-workload function and assembler to the
// boxed CellRunner contract.
type cellRunner[T any] struct {
	cell     func(ctx context.Context, opt Options, w workload.Workload) (T, error)
	assemble func(opt Options, ws []workload.Workload, rows []T, fails []*runerr.WorkloadError) (Result, error)
}

func (r cellRunner[T]) Cell(ctx context.Context, opt Options, w workload.Workload) (any, error) {
	return r.cell(ctx, opt, w)
}

func (r cellRunner[T]) Assemble(opt Options, ws []workload.Workload, rows []any, fails []*runerr.WorkloadError) (Result, error) {
	typed := make([]T, len(rows))
	for i, row := range rows {
		typed[i] = row.(T)
	}
	return r.assemble(opt, ws, typed, fails)
}

// EncodeRow implements RowCodec: gob over the concrete row type. Row
// types are plain structs of exported fields (plus an embedded
// workload.Workload, whose unexported build function gob skips and the
// workload registry rehydrates), so gob needs no registration.
func (r cellRunner[T]) EncodeRow(row any) ([]byte, error) {
	t, ok := row.(T)
	if !ok {
		return nil, fmt.Errorf("journal: row is %T, want %T", row, *new(T))
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&t); err != nil {
		return nil, fmt.Errorf("journal: encoding row: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeRow implements RowCodec.
func (r cellRunner[T]) DecodeRow(data []byte) (any, error) {
	var t T
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&t); err != nil {
		return nil, fmt.Errorf("journal: decoding row: %w", err)
	}
	return t, nil
}

// cells builds a CellRunner from a typed per-workload function and
// assembler (the cycle-level experiments, which re-simulate live).
func cells[T any](
	cell func(ctx context.Context, opt Options, w workload.Workload) (T, error),
	assemble func(opt Options, ws []workload.Workload, rows []T, fails []*runerr.WorkloadError) (Result, error),
) CellRunner {
	return cellRunner[T]{cell: cell, assemble: assemble}
}

// tracedRunner is cells plus the stream dependency edge: its Cell
// obtains the workload's committed reference stream (shared cache,
// degradation policy and all) before invoking the experiment's analyzer
// function, and StreamKey exposes the cache key for scheduler pinning.
type tracedRunner[T any] struct {
	cellRunner[T]
	defSize int
}

func (r tracedRunner[T]) StreamKey(opt Options, w workload.Workload) (trace.Key, bool) {
	if opt.Live {
		return trace.Key{}, false
	}
	return trace.Key{Workload: w.Name, Size: opt.size(r.defSize), MaxInsts: opt.maxInsts()}, true
}

// tracedCells builds a CellRunner for experiments that only consume the
// committed memory reference stream (all the non-timing experiments;
// the Section 5.6 cycle-level studies need full register-state
// simulation and use cells). fn receives the workload and its recorded
// stream, obtained from the shared cache — recorded on first use,
// replayed thereafter. opt.Live bypasses the cache and re-records.
func tracedCells[T any](
	defSize int,
	fn func(opt Options, w workload.Workload, tr *trace.Stream) (T, error),
	assemble func(opt Options, ws []workload.Workload, rows []T, fails []*runerr.WorkloadError) (Result, error),
) CellRunner {
	return tracedRunner[T]{
		defSize: defSize,
		cellRunner: cellRunner[T]{
			assemble: assemble,
			cell: func(ctx context.Context, opt Options, w workload.Workload) (T, error) {
				var zero T
				tr, err := workloadStream(ctx, opt, w, opt.size(defSize), opt.maxInsts())
				if err != nil {
					return zero, err
				}
				// Obtaining the stream is the cell's long pole (recording
				// beats through the interpreter's poll sites); mark the
				// hand-off to the analyzer so the watchdog sees a cell
				// that just left the cache as live, not silent.
				supervise.FromContext(ctx).Beat()
				defer startSpan("cell/replay").End()
				return fn(opt, w, tr)
			},
		},
	}
}

// runCell executes one (experiment × workload) cell under the shared
// isolation policy: a panic is recovered into a typed
// runerr.ErrWorkloadPanic, and Options.WorkloadTimeout bounds the cell
// with its own deadline. Both the standalone per-experiment pool
// (runCells) and the suite scheduler (RunSuite) execute cells through
// this wrapper, so a cell fails the same way on either path. An
// exceeded per-workload deadline is annotated with elapsed-vs-configured
// time ("deadline exceeded (12.3s > 10s)") so the suite's !! lines
// distinguish a near-miss from a hard hang; the parent run's own
// deadline ending takes the plain path, because that bound was not this
// cell's.
func runCell(ctx context.Context, opt Options, r CellRunner, w workload.Workload) (row any, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = runerr.FromPanic(w.Name, p, debug.Stack())
		}
	}()
	wctx := ctx
	if opt.WorkloadTimeout > 0 {
		var cancel context.CancelFunc
		wctx, cancel = context.WithTimeout(ctx, opt.WorkloadTimeout)
		defer cancel()
		start := time.Now()
		defer func() {
			if err != nil && errors.Is(err, context.DeadlineExceeded) && ctx.Err() == nil {
				err = fmt.Errorf("%w (%.1fs > %s): %w",
					runerr.ErrDeadline, time.Since(start).Seconds(), opt.WorkloadTimeout, err)
			}
		}()
	}
	return r.Cell(wctx, opt, w)
}

// collectCells splits per-cell outcomes into surviving rows (suite
// order, index-aligned with their workloads) and typed failures.
// Failures are collected instead of aborting on the first, so the suite
// always produces every row it can. The error return is reserved for
// every workload failing — with no survivors there is nothing to
// render.
func collectCells(ws []workload.Workload, rows []any, errs []error) ([]any, []workload.Workload, []*runerr.WorkloadError, error) {
	var (
		outRows []any
		outWs   []workload.Workload
		fails   []*runerr.WorkloadError
	)
	for i, w := range ws {
		if errs[i] == nil {
			outRows = append(outRows, rows[i])
			outWs = append(outWs, w)
			continue
		}
		fails = append(fails, runerr.New(w.Name, runerr.Classify(errs[i])))
	}
	if len(outRows) == 0 && len(fails) > 0 {
		joined := make([]error, len(fails))
		for i, f := range fails {
			joined[i] = f
		}
		return nil, nil, nil, fmt.Errorf("every workload failed: %w", errors.Join(joined...))
	}
	return outRows, outWs, fails, nil
}

// runCells is the standalone executor behind every Experiment.Run: the
// runner's cells execute once per workload over a private bounded pool,
// with runCell's isolation, and the survivors are assembled into the
// Result. The error return is reserved for hard aborts: the run context
// ending, or every workload failing.
func runCells(opt Options, r CellRunner) (Result, error) {
	ctx := opt.ctx()
	ws := opt.workloads()
	rows := make([]any, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			rows[i], errs[i] = runCell(ctx, opt, r, w)
		}(i, w)
	}
	wg.Wait()

	// The run itself ending is a hard abort, not a per-workload failure:
	// whatever rows completed are moot because the caller is going away.
	if err := ctx.Err(); err != nil {
		return nil, runerr.Classify(err)
	}
	outRows, outWs, fails, err := collectCells(ws, rows, errs)
	if err != nil {
		return nil, err
	}
	return assembleCells(opt, r, outWs, outRows, fails)
}

// assembleCells invokes the experiment's assembler under the same panic
// isolation as its cells: a panicking Assemble fails its experiment
// instead of the process — and, under the suite scheduler, instead of
// the pool worker that happened to retire the last cell (which still
// owns queued cells and their stream pins).
func assembleCells(opt Options, r CellRunner, ws []workload.Workload, rows []any, fails []*runerr.WorkloadError) (res Result, err error) {
	defer startSpan("assemble").End()
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, runerr.FromPanic("assemble", p, debug.Stack())
		}
	}()
	return r.Assemble(opt, ws, rows, fails)
}

// parallelSims runs n independent deterministic simulations of one cell
// concurrently — fig9's five pipeline configurations, say — so a
// multi-variant cell uses as many cores as it has variants instead of
// one. sim(i) must only write state owned by variant i. A panic in any
// variant is re-raised in the caller's goroutine, keeping the per-cell
// isolation policy intact; errors are reported lowest-index first so
// the outcome is deterministic. The context is checked once per
// simulation, preserving the serial path's "no in-loop poll, bounded
// staleness" semantics.
func parallelSims(ctx context.Context, n int, sim func(i int) error) error {
	errs := make([]error, n)
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicked any
	)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panicMu.Lock()
					if panicked == nil {
						panicked = p
					}
					panicMu.Unlock()
				}
			}()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			errs[i] = sim(i)
		}(i)
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// traceCache is the process-wide store of committed reference streams.
// Every functional experiment in a run (and every run in a process)
// shares it, so `rarsim -exp all` simulates each workload once and
// replays the stream into every analyzer.
var traceCache = trace.NewCache(trace.DefaultBudget)

// TraceCache exposes the shared stream cache (for budget control and
// statistics reporting in cmd/rarsim).
func TraceCache() *trace.Cache { return traceCache }

// workloadStream obtains one workload's committed reference stream under
// the resilience policy. The degradation order on the cached path is:
// shared cache -> (corrupt stream? drop the poisoned entry and re-record
// live with the baseline interpreter) -> error, which the caller records
// as an annotated per-workload failure. Fault-injection hooks
// (faultsim) reach the interpreter through the record closure, so
// injected panics, stalls, and corruption exercise exactly the paths a
// real crash would take.
func workloadStream(ctx context.Context, opt Options, w workload.Workload, size int, maxInsts uint64) (*trace.Stream, error) {
	if opt.Live {
		// The pre-cache harness re-assembled the workload and
		// Step-interpreted it over paged memory for every experiment;
		// model all three costs.
		tr, err := trace.RecordStreamBaselineContext(ctx, w.Assemble(size), maxInsts)
		if err != nil {
			return nil, err
		}
		if tr.Truncated {
			return nil, funcsim.ErrMaxInsts
		}
		return tr, nil
	}

	key := trace.Key{Workload: w.Name, Size: size, MaxInsts: maxInsts}
	record := func() (*trace.Stream, error) {
		defer startSpan("cell/record").End()
		tr, err := trace.RecordStreamContext(ctx, w.Program(size), maxInsts, faultsim.Hook(w.Name, ctx))
		if err == nil && faultsim.Enabled() && faultsim.ShouldCorrupt(w.Name) {
			// One spurious event desynchronises the tally from the
			// execution profile, which Validate below must catch.
			tr.Append(trace.KindLoad, 0, 0, 0)
		}
		return tr, err
	}
	tr, err := traceCache.GetContext(ctx, key, record)
	if err == nil {
		if verr := tr.Validate(); verr != nil {
			// Graceful degradation: never serve a corrupt stream. Drop
			// the poisoned entry so later lookups re-record, and retry
			// live on the independent baseline interpreter before
			// declaring the workload failed.
			traceCache.Drop(key)
			tr, err = trace.RecordStreamBaselineContext(ctx, w.Assemble(size), maxInsts)
			if err == nil {
				err = tr.Validate()
			}
			if err != nil {
				err = fmt.Errorf("%w; live re-record also failed: %w", verr, err)
			}
		}
	}
	if err != nil {
		return nil, err
	}
	if tr.Truncated {
		return nil, funcsim.ErrMaxInsts
	}
	if opt.Check {
		if err := verifyStreamOnce(ctx, key, tr, w, size, maxInsts); err != nil {
			return nil, err
		}
	}
	return tr, nil
}

// streamVerified tracks which cache keys the differential oracle has
// already cross-checked, so a -check run pays the live re-record once
// per stream rather than once per consuming cell.
var streamVerified sync.Map // trace.Key -> struct{}

// verifyStreamOnce is the replay-vs-live differential oracle: the served
// stream must be event-for-event identical to a fresh recording on the
// baseline Step interpreter (an independent implementation of the same
// semantics — different memory model, no recording fast path). The first
// caller per key performs the comparison; concurrent callers may race to
// verify the same key once each, which is only redundant work.
func verifyStreamOnce(ctx context.Context, key trace.Key, tr *trace.Stream, w workload.Workload, size int, maxInsts uint64) error {
	if _, done := streamVerified.LoadOrStore(key, struct{}{}); done {
		return nil
	}
	live, err := trace.RecordStreamBaselineContext(ctx, w.Assemble(size), maxInsts)
	if err != nil {
		streamVerified.Delete(key) // transient; let a retry re-verify
		return fmt.Errorf("check: live re-record for oracle failed: %w", err)
	}
	if err := trace.DiffStreams(tr, live); err != nil {
		return fmt.Errorf("check: replayed stream diverges from live baseline: %w", err)
	}
	return nil
}

// meansByClass computes the SPECint, SPECfp and overall arithmetic means
// of a metric extracted from each row.
func meansByClass[T any](ws []workload.Workload, rows []T, metric func(T) float64) (intMean, fpMean, all float64) {
	var si, sf, sa float64
	var ni, nf int
	for i, w := range ws {
		v := metric(rows[i])
		sa += v
		if w.Class == workload.Int {
			si += v
			ni++
		} else {
			sf += v
			nf++
		}
	}
	if ni > 0 {
		intMean = si / float64(ni)
	}
	if nf > 0 {
		fpMean = sf / float64(nf)
	}
	if len(ws) > 0 {
		all = sa / float64(len(ws))
	}
	return
}
