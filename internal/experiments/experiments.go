// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 2 and Section 5). Each experiment is registered
// under the paper's table/figure id (table51, fig2, fig5, fig6, fig7a,
// fig7b, table52, fig9, fig10) plus this repository's ablations, and
// prints rows/series in the paper's layout so results can be compared
// side by side (see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"rarpred/internal/funcsim"
	"rarpred/internal/trace"
	"rarpred/internal/workload"
)

// Options parameterises an experiment run.
type Options struct {
	// Size is the workload size parameter (0 selects each experiment's
	// default: workload.ReferenceSize for accuracy studies,
	// workload.TimingSize for the cycle-level studies).
	Size int

	// Workloads restricts the suite (nil = all 18 analogs).
	Workloads []workload.Workload

	// MaxInsts bounds each functional run as a safety net (0 = default).
	MaxInsts uint64

	// Parallelism bounds concurrent workload simulations (0 = GOMAXPROCS).
	Parallelism int

	// Live forces the functional experiments onto the pre-cache path:
	// each experiment assembles its workloads fresh and re-simulates them
	// with the baseline Step interpreter over paged memory, instead of
	// replaying the shared memory-trace cache. The results are identical
	// either way (both paths commit the exact same stream); Live exists so
	// the equivalence can be asserted and the pipeline's speedup measured
	// against the costs it removed.
	Live bool
}

func (o Options) workloads() []workload.Workload {
	if o.Workloads != nil {
		return o.Workloads
	}
	return workload.All()
}

func (o Options) size(def int) int {
	if o.Size > 0 {
		return o.Size
	}
	return def
}

func (o Options) maxInsts() uint64 {
	if o.MaxInsts > 0 {
		return o.MaxInsts
	}
	return 2_000_000_000
}

func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Result is what every experiment produces: a rendered, paper-layout
// report. Concrete result types expose the underlying numbers.
type Result interface{ fmt.Stringer }

// Experiment is one runnable reproduction of a paper table or figure.
type Experiment struct {
	// ID is the paper's identifier (e.g. "fig6") or an ablation id.
	ID string
	// Title describes what the paper reports there.
	Title string
	// Run executes the experiment.
	Run func(Options) (Result, error)
}

var registry []Experiment

func register(e Experiment) { registry = append(registry, e) }

// All returns the experiments in registration (paper) order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs returns all experiment ids, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// forEachWorkload runs fn once per workload, in parallel, preserving
// suite order in the returned slice. fn receives the workload and its
// assembled program and returns an experiment-specific row.
func forEachWorkload[T any](opt Options, size int, fn func(w workload.Workload, prog *funcsim.Sim) (T, error)) ([]T, error) {
	ws := opt.workloads()
	rows := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sim := funcsim.New(w.Program(size))
			rows[i], errs[i] = fn(w, sim)
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// traceCache is the process-wide store of committed reference streams.
// Every functional experiment in a run (and every run in a process)
// shares it, so `rarsim -exp all` simulates each workload once and
// replays the stream into every analyzer.
var traceCache = trace.NewCache(trace.DefaultBudget)

// TraceCache exposes the shared stream cache (for budget control and
// statistics reporting in cmd/rarsim).
func TraceCache() *trace.Cache { return traceCache }

// forEachWorkloadTraced is the trace-backed sibling of forEachWorkload,
// used by every experiment that only consumes the committed memory
// reference stream (all the non-timing experiments; the Section 5.6
// cycle-level studies need full register-state simulation and keep the
// live path). fn receives the workload and its recorded stream, obtained
// from the shared cache — recorded on first use, replayed thereafter.
// opt.Live bypasses the cache and re-records.
func forEachWorkloadTraced[T any](opt Options, size int, fn func(w workload.Workload, tr *trace.Stream) (T, error)) ([]T, error) {
	maxInsts := opt.maxInsts()
	ws := opt.workloads()
	rows := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, opt.parallelism())
	var wg sync.WaitGroup
	for i, w := range ws {
		wg.Add(1)
		go func(i int, w workload.Workload) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			record := func() (*trace.Stream, error) {
				return trace.RecordStream(w.Program(size), maxInsts)
			}
			var tr *trace.Stream
			var err error
			if opt.Live {
				// The pre-cache harness re-assembled the workload and
				// Step-interpreted it over paged memory for every
				// experiment; model all three costs.
				tr, err = trace.RecordStreamBaseline(w.Assemble(size), maxInsts)
			} else {
				key := trace.Key{Workload: w.Name, Size: size, MaxInsts: maxInsts}
				tr, err = traceCache.Get(key, record)
			}
			switch {
			case err != nil:
				errs[i] = fmt.Errorf("%s: %w", w.Name, err)
			case tr.Truncated:
				errs[i] = fmt.Errorf("%s: %w", w.Name, funcsim.ErrMaxInsts)
			default:
				rows[i], errs[i] = fn(w, tr)
			}
		}(i, w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// meansByClass computes the SPECint, SPECfp and overall arithmetic means
// of a metric extracted from each row.
func meansByClass[T any](ws []workload.Workload, rows []T, metric func(T) float64) (intMean, fpMean, all float64) {
	var si, sf, sa float64
	var ni, nf int
	for i, w := range ws {
		v := metric(rows[i])
		sa += v
		if w.Class == workload.Int {
			si += v
			ni++
		} else {
			sf += v
			nf++
		}
	}
	if ni > 0 {
		intMean = si / float64(ni)
	}
	if nf > 0 {
		fpMean = sf / float64(nf)
	}
	if len(ws) > 0 {
		all = sa / float64(len(ws))
	}
	return
}
