package experiments

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"rarpred/internal/runerr"
	"rarpred/internal/workload"
)

// orderedExperiment is a synthetic cell experiment that appends each
// cell's "exp/workload" key to order as it starts.
func orderedExperiment(id string, mu *sync.Mutex, order *[]string) Experiment {
	return Experiment{
		ID:    id,
		Title: "synthetic " + id,
		Cells: cells(
			func(ctx context.Context, opt Options, w workload.Workload) (countRow, error) {
				mu.Lock()
				*order = append(*order, id+"/"+w.Name)
				mu.Unlock()
				return countRow{Workload: w, Value: len(w.Name)}, nil
			},
			func(opt Options, ws []workload.Workload, rows []countRow, fails []*runerr.WorkloadError) (Result, error) {
				res := countResult{}
				for _, r := range rows {
					res.lines = append(res.lines, fmt.Sprintf("%s %s=%d", id, r.Name, r.Value))
				}
				return annotate(res, fails), nil
			},
		),
	}
}

// TestSuiteLPTOrdering: with a cost model and one worker, cells execute
// longest-first, unknown-cost cells lead, and the delivered output is
// byte-identical to an unordered run.
func TestSuiteLPTOrdering(t *testing.T) {
	ws := workload.All()[:3]
	exps := func(mu *sync.Mutex, order *[]string) []Experiment {
		return []Experiment{
			orderedExperiment("synthL1", mu, order),
			orderedExperiment("synthL2", mu, order),
		}
	}

	// Distinct costs for every cell except synthL2/ws[1], which has no
	// estimate and must therefore run before every estimated cell.
	cost := map[string]float64{
		"synthL1/" + ws[0].Name: 3,
		"synthL1/" + ws[1].Name: 6,
		"synthL1/" + ws[2].Name: 1,
		"synthL2/" + ws[0].Name: 5,
		"synthL2/" + ws[2].Name: 4,
	}
	var mu sync.Mutex
	var order []string
	opt := Options{
		Workloads:   ws,
		Parallelism: 1,
		CellCost: func(exp, wl string) (float64, bool) {
			c, ok := cost[exp+"/"+wl]
			return c, ok
		},
	}
	got, _ := renderSuite(t, opt, exps(&mu, &order))

	want := []string{
		"synthL2/" + ws[1].Name, // unknown cost: scheduled first
		"synthL1/" + ws[1].Name, // 6
		"synthL2/" + ws[0].Name, // 5
		"synthL2/" + ws[2].Name, // 4
		"synthL1/" + ws[0].Name, // 3
		"synthL1/" + ws[2].Name, // 1
	}
	if len(order) != len(want) {
		t.Fatalf("ran %d cells, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order[%d] = %s, want %s\nfull order: %v", i, order[i], want[i], order)
		}
	}

	// Ordering is a scheduling detail: delivery stays in suite order, so
	// the rendered output matches a run with no cost model at all.
	var mu2 sync.Mutex
	var order2 []string
	ref, _ := renderSuite(t, Options{Workloads: ws, Parallelism: 1}, exps(&mu2, &order2))
	if got != ref {
		t.Fatalf("LPT run output differs from unordered run:\n--- lpt ---\n%s--- plain ---\n%s", got, ref)
	}
	// The unordered run keeps construction order (experiment-major).
	for i, k := range order2 {
		wantK := []string{"synthL1", "synthL1", "synthL1", "synthL2", "synthL2", "synthL2"}[i] +
			"/" + ws[i%3].Name
		if k != wantK {
			t.Fatalf("plain order[%d] = %s, want %s", i, k, wantK)
		}
	}
}

// TestSuiteLPTWithResume: resumed cells never enter the queue, and the
// remaining cells still sort by cost.
func TestSuiteLPTWithResume(t *testing.T) {
	ws := workload.All()[:3]
	jnl := &memJournal{}
	var calls atomic.Int64
	first := countingExperiment("synthM", &calls, "")
	codec := first.Cells.(RowCodec)
	row, err := first.Cells.Cell(context.Background(), Options{}, ws[0])
	if err != nil {
		t.Fatal(err)
	}
	enc, err := codec.EncodeRow(row)
	if err != nil {
		t.Fatal(err)
	}
	jnl.Record("synthM", ws[0].Name, enc, 2.5)
	if sec, ok := jnl.secs["synthM/"+ws[0].Name]; !ok || sec != 2.5 {
		t.Fatalf("journal seconds = %v, %v; want 2.5", sec, ok)
	}

	var mu sync.Mutex
	var order []string
	opt := Options{
		Workloads:   ws,
		Parallelism: 1,
		Journal:     jnl,
		CellCost: func(exp, wl string) (float64, bool) {
			if wl == ws[1].Name {
				return 1, true
			}
			return 9, true
		},
	}
	renderSuite(t, opt, []Experiment{orderedExperiment("synthM", &mu, &order)})
	want := []string{"synthM/" + ws[2].Name, "synthM/" + ws[1].Name}
	if len(order) != 2 || order[0] != want[0] || order[1] != want[1] {
		t.Fatalf("resumed LPT order = %v, want %v", order, want)
	}
}
