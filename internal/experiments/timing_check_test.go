package experiments

import (
	"context"
	"strings"
	"testing"

	"rarpred/internal/faultsim"
	"rarpred/internal/trace"
)

// These tests use workload sizes no other test uses (8, 10, 14, 16),
// so the shared trace cache and the timing oracle's verified-key set
// cannot be pre-populated by another test.

// TestTimingLiveMatchesReplay: -live forces every configuration onto a
// private live interpreter; the rendered result must be identical to
// the shared-recording replay path. This is the experiment-level twin
// of pipeline's TestReplayMatchesLive.
func TestTimingLiveMatchesReplay(t *testing.T) {
	opt := subset("go", "tom")
	opt.Size = 8
	replayed, err := runFig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Live = true
	live, err := runFig9(opt)
	if err != nil {
		t.Fatal(err)
	}
	if live.String() != replayed.String() {
		t.Errorf("-live diverges from replay:\n--- replay ---\n%s--- live ---\n%s",
			replayed.String(), live.String())
	}
}

// TestTimingCheckCleanRun: the replay-vs-live pipeline oracle passes on
// an honest recording and does not perturb the rendered result.
func TestTimingCheckCleanRun(t *testing.T) {
	opt := subset("com", "hyd")
	opt.Size = 14
	plain, err := runFig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Check = true
	checked, err := runFig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, partial := checked.(*PartialResult); partial {
		t.Fatalf("oracle flagged an honest recording: %s", checked)
	}
	if plain.String() != checked.String() {
		t.Errorf("-check perturbed the result:\n--- plain ---\n%s--- checked ---\n%s",
			plain.String(), checked.String())
	}
}

// TestTimingCheckCatchesDivergence: a cached instruction recording that
// passes Validate (tallies intact) but steers one branch the wrong way
// is invisible to the tally check — only the replay-vs-live pipeline
// shadow can see it.
func TestTimingCheckCatchesDivergence(t *testing.T) {
	opt := subset("com", "m88")
	opt.Size = 16
	opt.Check = true
	w := opt.Workloads[0]
	prog := w.Program(opt.Size)

	correct, err := trace.RecordIStreamBaselineContext(context.Background(), w.Assemble(opt.Size), opt.maxInsts())
	if err != nil {
		t.Fatal(err)
	}
	bad := trace.NewIStream()
	cur := correct.Cursor()
	branches, flipped := 0, false
	for {
		idx, next, ok := cur.NextInst()
		if !ok {
			break
		}
		in := prog.Insts[idx]
		if in.IsBranch() && !flipped {
			if branches++; branches == 50 {
				// Invert the recorded direction of the 50th branch: the
				// replayed predictor trains on (and redirects to) a path
				// the live run never took.
				if next == idx*4+4 {
					next = idx*4 + 8
				} else {
					next = idx*4 + 4
				}
				flipped = true
			}
		}
		bad.AppendInst(idx, next)
		if in.IsMem() {
			addr, value, ok := cur.NextMem()
			if !ok {
				t.Fatal("test setup: recording ran out of memory events")
			}
			bad.AppendMem(addr, value)
		}
	}
	bad.Counts = correct.Counts
	if !flipped {
		t.Fatal("test setup: fewer than 50 branches recorded")
	}
	if bad.Validate() != nil {
		t.Fatal("test setup: bad stream must pass Validate")
	}

	key := trace.Key{Workload: w.Name, Size: opt.Size, MaxInsts: opt.maxInsts(), Timing: true}
	if _, err := TraceCache().GetIStreamContext(context.Background(), key,
		func() (*trace.IStream, error) { return bad, nil }); err != nil {
		t.Fatal(err)
	}
	defer TraceCache().Drop(key)

	res, err := runFig10(opt)
	if err != nil {
		t.Fatalf("divergence aborted the run instead of failing the workload: %v", err)
	}
	p, ok := res.(*PartialResult)
	if !ok {
		t.Fatalf("poisoned recording produced a clean result: %s", res)
	}
	if len(p.Fails) != 1 || p.Fails[0].Workload != w.Name {
		t.Fatalf("failures = %v, want exactly the poisoned workload", p.Fails)
	}
	if msg := p.Fails[0].Error(); !strings.Contains(msg, "diverges") {
		t.Errorf("failure does not describe the divergence: %s", msg)
	}
}

// TestTimingCorruptRecordingDegrades: an injected recording corruption
// fails Validate, the poisoned cache entry is dropped, and the baseline
// interpreter re-records — the experiment still delivers a result
// identical to an unfaulted run.
func TestTimingCorruptRecordingDegrades(t *testing.T) {
	defer faultsim.Reset()
	opt := subset("li")
	opt.Size = 10
	faultsim.Inject(opt.Workloads[0].Name, faultsim.Fault{Kind: faultsim.Corrupt, Times: 1})
	degraded, err := runFig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	if _, partial := degraded.(*PartialResult); partial {
		t.Fatalf("corrupt recording failed the workload instead of degrading: %s", degraded)
	}
	faultsim.Reset()
	plain, err := runFig10(opt)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.String() != plain.String() {
		t.Errorf("degraded run diverges from clean run:\n--- degraded ---\n%s--- plain ---\n%s",
			degraded.String(), plain.String())
	}
}

// TestSuitePinsDrainTimingKeys: timing experiments declare their
// recording dependencies through StreamKey like the functional ones do;
// a suite over both kinds must release every pin it takes.
func TestSuitePinsDrainTimingKeys(t *testing.T) {
	opt := subset("go", "tom")
	opt.Size = 8 // shares the TestTimingLiveMatchesReplay recordings
	exps := []Experiment{mustByID(t, "fig9"), mustByID(t, "ablmemspec"), mustByID(t, "fig2")}
	RunSuite(opt, exps, func(item SuiteItem) bool {
		if item.Err != nil {
			t.Errorf("%s: %v", item.Exp.ID, item.Err)
		}
		return true
	})
	if n := pinned(t); n != 0 {
		t.Fatalf("%d streams still pinned after a clean timing suite", n)
	}
}
