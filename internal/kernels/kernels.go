// Package kernels provides classic algorithm kernels written in the
// simulated ISA, with Go reference implementations. They validate the
// whole stack end to end — assembler, functional simulator, and (through
// determinism checks) the timing simulator — by checking *algorithmic
// results* rather than microarchitectural counters: if quicksort sorts
// and CRC32 matches the table-driven reference, the ISA semantics are
// right.
package kernels

import (
	"fmt"

	"rarpred/internal/asm"
	"rarpred/internal/funcsim"
	"rarpred/internal/isa"
)

// Kernel is one validated program: a builder and a checker that inspects
// the finished simulator state against a Go reference.
type Kernel struct {
	Name  string
	Build func() *isa.Program
	Check func(s *funcsim.Sim) error
}

// All returns the kernel suite.
func All() []Kernel {
	return []Kernel{
		{Name: "quicksort", Build: Quicksort, Check: CheckQuicksort},
		{Name: "sieve", Build: Sieve, Check: CheckSieve},
		{Name: "matmul", Build: MatMul, Check: CheckMatMul},
		{Name: "fibmemo", Build: FibMemo, Check: CheckFibMemo},
		{Name: "bst", Build: BST, Check: CheckBST},
		{Name: "crc32", Build: CRC32, Check: CheckCRC32},
	}
}

// Run builds, executes and checks one kernel.
func (k Kernel) Run(maxInsts uint64) error {
	s := funcsim.New(k.Build())
	if err := s.Run(maxInsts); err != nil {
		return fmt.Errorf("kernels: %s: %w", k.Name, err)
	}
	if !s.Halted {
		return fmt.Errorf("kernels: %s did not halt", k.Name)
	}
	return k.Check(s)
}

// sortN is the quicksort input size.
const sortN = 512

func sortInput() []uint32 {
	vals := make([]uint32, sortN)
	x := uint32(0x2545F491)
	for i := range vals {
		x = x*1664525 + 1013904223
		vals[i] = x % 10000
	}
	return vals
}

// Quicksort sorts an array in place with a recursive quicksort
// (Lomuto partition), exercising deep call/return chains, stack
// save/restore traffic and data-dependent branches.
func Quicksort() *isa.Program {
	b := asm.NewBuilder()
	b.WordInt("arr", intSlice(sortInput())...)

	// main: qsort(&arr[0], &arr[n-1]); halt
	b.Label("main")
	b.La(isa.R4, "arr")                                   // lo
	b.La(isa.R5, "arr")                                   //
	b.RRI(isa.OpAddi, isa.R5, isa.R5, int32((sortN-1)*4)) // hi
	b.Call("qsort")
	b.Halt()

	// qsort(r4 = lo, r5 = hi), clobbers r1-r3, r6-r9.
	b.Label("qsort")
	b.Br(isa.OpBge, isa.R4, isa.R5, "qdone") // lo >= hi: empty or single
	// prologue: save ra, lo, hi
	b.RRI(isa.OpAddi, isa.R29, isa.R29, -12)
	b.Store(isa.OpSw, isa.R31, isa.R29, 0)
	b.Store(isa.OpSw, isa.R4, isa.R29, 4)
	b.Store(isa.OpSw, isa.R5, isa.R29, 8)

	// Lomuto partition with pivot = *hi.
	b.Load(isa.OpLw, isa.R6, isa.R5, 0) // pivot
	b.Mv(isa.R7, isa.R4)                // i = lo (store slot)
	b.Mv(isa.R8, isa.R4)                // j = lo (scan)
	b.Label("ploop")
	b.Br(isa.OpBge, isa.R8, isa.R5, "pdone")
	b.Load(isa.OpLw, isa.R9, isa.R8, 0) // *j
	b.Br(isa.OpBge, isa.R9, isa.R6, "pskip")
	// swap *i, *j
	b.Load(isa.OpLw, isa.R2, isa.R7, 0)
	b.Store(isa.OpSw, isa.R9, isa.R7, 0)
	b.Store(isa.OpSw, isa.R2, isa.R8, 0)
	b.RRI(isa.OpAddi, isa.R7, isa.R7, 4)
	b.Label("pskip")
	b.RRI(isa.OpAddi, isa.R8, isa.R8, 4)
	b.Jump("ploop")
	b.Label("pdone")
	// swap *i, *hi  (pivot into place)
	b.Load(isa.OpLw, isa.R2, isa.R7, 0)
	b.Load(isa.OpLw, isa.R3, isa.R5, 0)
	b.Store(isa.OpSw, isa.R3, isa.R7, 0)
	b.Store(isa.OpSw, isa.R2, isa.R5, 0)

	// left: qsort(lo, i-4)
	b.Load(isa.OpLw, isa.R4, isa.R29, 4)
	b.RRI(isa.OpAddi, isa.R5, isa.R7, -4)
	b.Store(isa.OpSw, isa.R7, isa.R29, 4) // keep i in the lo slot
	b.Call("qsort")
	// right: qsort(i+4, hi)
	b.Load(isa.OpLw, isa.R4, isa.R29, 4) // i
	b.RRI(isa.OpAddi, isa.R4, isa.R4, 4)
	b.Load(isa.OpLw, isa.R5, isa.R29, 8)
	b.Call("qsort")

	b.Load(isa.OpLw, isa.R31, isa.R29, 0)
	b.RRI(isa.OpAddi, isa.R29, isa.R29, 12)
	b.Label("qdone")
	b.Ret()

	return mustProgram(b, "quicksort")
}

// CheckQuicksort verifies the array is the sorted reference.
func CheckQuicksort(s *funcsim.Sim) error {
	want := sortInput()
	sortU32(want)
	for i, w := range want {
		got := s.Mem.MustLoad(asm.DataBase + uint32(i)*4)
		if got != w {
			return fmt.Errorf("arr[%d] = %d, want %d", i, got, w)
		}
	}
	return nil
}

// sieveN is the sieve bound.
const sieveN = 4096

// Sieve marks composites in a byte-per-word array and counts primes.
func Sieve() *isa.Program {
	src := fmt.Sprintf(`
        .data
flags:  .space %d
count:  .word 0
        .text
main:   li   r1, 2                  # candidate
        li   r2, %d                 # bound
        la   r3, flags
outer:  slli r4, r1, 2
        add  r4, r3, r4
        lw   r5, 0(r4)              # composite?
        bne  r5, r0, next
        # prime: count++ and mark multiples
        la   r6, count
        lw   r7, 0(r6)
        addi r7, r7, 1
        sw   r7, 0(r6)
        add  r8, r1, r1             # m = 2p
mark:   bge  r8, r2, next
        slli r9, r8, 2
        add  r9, r3, r9
        li   r10, 1
        sw   r10, 0(r9)
        add  r8, r8, r1
        j    mark
next:   addi r1, r1, 1
        blt  r1, r2, outer
        halt`, sieveN, sieveN)
	return asm.MustAssemble(src)
}

// CheckSieve verifies the prime count below sieveN.
func CheckSieve(s *funcsim.Sim) error {
	want := uint32(0)
	composite := make([]bool, sieveN)
	for p := 2; p < sieveN; p++ {
		if composite[p] {
			continue
		}
		want++
		for m := 2 * p; m < sieveN; m += p {
			composite[m] = true
		}
	}
	got := s.Mem.MustLoad(asm.DataBase + sieveN*4)
	if got != want {
		return fmt.Errorf("primes below %d = %d, want %d", sieveN, got, want)
	}
	return nil
}

// matN is the matrix dimension.
const matN = 24

func matInputs() (a, bm []uint32) {
	g := uint32(7)
	next := func() uint32 {
		g = g*1664525 + 1013904223
		return g % 17
	}
	a = make([]uint32, matN*matN)
	bm = make([]uint32, matN*matN)
	for i := range a {
		a[i] = next()
		bm[i] = next()
	}
	return
}

// MatMul computes C = A×B over small integers.
func MatMul() *isa.Program {
	a, bm := matInputs()
	src := fmt.Sprintf(`
main:   li   r1, 0                  # i
li:     li   r2, 0                  # j
lj:     li   r3, 0                  # k
        li   r4, 0                  # acc
lk:     # a[i][k]
        li   r5, %d
        mul  r6, r1, r5
        add  r6, r6, r3
        slli r6, r6, 2
        la   r7, ma
        add  r7, r7, r6
        lw   r8, 0(r7)
        # b[k][j]
        mul  r6, r3, r5
        add  r6, r6, r2
        slli r6, r6, 2
        la   r7, mb
        add  r7, r7, r6
        lw   r9, 0(r7)
        mul  r8, r8, r9
        add  r4, r4, r8
        addi r3, r3, 1
        blt  r3, r5, lk
        # c[i][j] = acc
        mul  r6, r1, r5
        add  r6, r6, r2
        slli r6, r6, 2
        la   r7, mc
        add  r7, r7, r6
        sw   r4, 0(r7)
        addi r2, r2, 1
        blt  r2, r5, lj
        addi r1, r1, 1
        blt  r1, r5, li
        halt`, matN)
	full := "        .data\n" + wordsBlock("ma", a) + wordsBlock("mb", bm) +
		fmt.Sprintf("mc:     .space %d\n", matN*matN) + "        .text\n" + src
	return asm.MustAssemble(full)
}

// CheckMatMul verifies C against the Go product.
func CheckMatMul(s *funcsim.Sim) error {
	a, bm := matInputs()
	base := asm.DataBase + uint32(2*matN*matN)*4
	for i := 0; i < matN; i++ {
		for j := 0; j < matN; j++ {
			var want uint32
			for k := 0; k < matN; k++ {
				want += a[i*matN+k] * bm[k*matN+j]
			}
			got := s.Mem.MustLoad(base + uint32(i*matN+j)*4)
			if got != want {
				return fmt.Errorf("c[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
	return nil
}

// fibN is the fibonacci index (memoized through memory, mod 2^32).
const fibN = 40

// FibMemo computes fib(n) with a memo table in memory — every fib(k)
// is stored once and re-read twice, a textbook RAW+RAR generator that
// also has a checkable answer.
func FibMemo() *isa.Program {
	src := fmt.Sprintf(`
        .data
memo:   .space %d
        .text
main:   la   r1, memo
        li   r2, 1
        sw   r2, 4(r1)              # fib(1) = 1
        li   r3, 2                  # k
fk:     slli r4, r3, 2
        add  r4, r1, r4
        lw   r5, -4(r4)             # fib(k-1)
        lw   r6, -8(r4)             # fib(k-2)
        add  r7, r5, r6
        sw   r7, 0(r4)
        addi r3, r3, 1
        li   r8, %d
        blt  r3, r8, fk
        halt`, fibN+1, fibN+1)
	return asm.MustAssemble(src)
}

// CheckFibMemo verifies the memo table.
func CheckFibMemo(s *funcsim.Sim) error {
	var a, b uint32 = 0, 1
	for k := 2; k <= fibN; k++ {
		a, b = b, a+b
		got := s.Mem.MustLoad(asm.DataBase + uint32(k)*4)
		if got != b {
			return fmt.Errorf("fib(%d) = %d, want %d", k, got, b)
		}
	}
	return nil
}

// bstN keys are inserted, then all are looked up.
const bstN = 256

func bstKeys() []uint32 {
	g := uint32(99)
	keys := make([]uint32, bstN)
	for i := range keys {
		g = g*1664525 + 1013904223
		keys[i] = g%65536 + 1 // nonzero
	}
	return keys
}

// BST builds an unbalanced binary search tree in an arena (insert) and
// then sums the depths of all lookups — heavy pointer chasing with
// writes, the gcc/li access pattern with a checkable answer.
func BST() *isa.Program {
	src := `
main:   la   r16, keys
        la   r17, arena
        la   r18, nextfree
        li   r19, 0                 # inserted count
        li   r20, ` + fmt.Sprint(bstN) + `
        # insert the first key as the root
        lw   r1, 0(r16)
        sw   r1, 0(r17)             # root.key
        li   r2, 1
        sw   r2, 0(r18)
        li   r19, 1
ins:    bge  r19, r20, lookups
        slli r1, r19, 2
        add  r1, r16, r1
        lw   r2, 0(r1)              # key to insert
        mv   r3, r17                # node = root
walk:   lw   r4, 0(r3)              # node.key
        bge  r2, r4, goright
        lw   r5, 4(r3)              # left
        beq  r5, r0, putleft
        mv   r3, r5
        j    walk
goright:
        lw   r5, 8(r3)              # right
        beq  r5, r0, putright
        mv   r3, r5
        j    walk
putleft:
        call alloc
        sw   r2, 0(r6)
        sw   r6, 4(r3)
        j    insdone
putright:
        call alloc
        sw   r2, 0(r6)
        sw   r6, 8(r3)
insdone:
        addi r19, r19, 1
        j    ins

# alloc -> r6 = &arena[nextfree*16]; nextfree++
alloc:  lw   r7, 0(r18)
        slli r6, r7, 4
        add  r6, r17, r6
        addi r7, r7, 1
        sw   r7, 0(r18)
        ret

lookups:
        li   r19, 0
        la   r21, depthsum
lkp:    bge  r19, r20, done
        slli r1, r19, 2
        add  r1, r16, r1
        lw   r2, 0(r1)              # key
        mv   r3, r17
        li   r8, 0                  # depth
find:   addi r8, r8, 1
        lw   r4, 0(r3)              # node.key
        beq  r4, r2, found
        bge  r2, r4, fright
        lw   r3, 4(r3)
        j    find
fright: lw   r3, 8(r3)
        j    find
found:  lw   r9, 0(r21)
        add  r9, r9, r8
        sw   r9, 0(r21)
        addi r19, r19, 1
        j    lkp
done:   halt`
	full := "        .data\n" + wordsBlock("keys", bstKeys()) +
		fmt.Sprintf("arena:  .space %d\nnextfree: .word 0\ndepthsum: .word 0\n", bstN*4) +
		"        .text\n" + src
	return asm.MustAssemble(full)
}

// CheckBST verifies the summed lookup depths against a Go BST.
func CheckBST(s *funcsim.Sim) error {
	keys := bstKeys()
	type node struct {
		key         uint32
		left, right *node
	}
	root := &node{key: keys[0]}
	for _, k := range keys[1:] {
		n := root
		for {
			if k >= n.key {
				if n.right == nil {
					n.right = &node{key: k}
					break
				}
				n = n.right
			} else {
				if n.left == nil {
					n.left = &node{key: k}
					break
				}
				n = n.left
			}
		}
	}
	var want uint32
	for _, k := range keys {
		n, depth := root, uint32(0)
		for {
			depth++
			if n.key == k {
				break
			}
			if k >= n.key {
				n = n.right
			} else {
				n = n.left
			}
		}
		want += depth
	}
	// depthsum lives after keys (bstN words), arena (bstN*4 words) and
	// nextfree (1 word).
	addr := asm.DataBase + uint32(bstN+bstN*4+1)*4
	got := s.Mem.MustLoad(addr)
	if got != want {
		return fmt.Errorf("depth sum = %d, want %d", got, want)
	}
	return nil
}

// crcLen is the CRC32 input length in words.
const crcLen = 1024

func crcInput() []uint32 {
	g := uint32(0xABCD)
	out := make([]uint32, crcLen)
	for i := range out {
		g = g*1664525 + 1013904223
		out[i] = g
	}
	return out
}

// CRC32 computes a word-at-a-time CRC over the input using the standard
// bitwise algorithm (IEEE polynomial, one word per outer step).
func CRC32() *isa.Program {
	src := fmt.Sprintf(`
        .data
%s
result: .word 0
        .text
main:   la   r16, input
        li   r17, %d                # words
        li   r18, -1                # crc = 0xFFFFFFFF
        li   r19, 0x04C11DB7        # polynomial (MSB-first)
wloop:  lw   r1, 0(r16)
        xor  r18, r18, r1
        li   r2, 32                 # bits
bloop:  srli r3, r18, 31
        slli r18, r18, 1
        beq  r3, r0, nofb
        xor  r18, r18, r19
nofb:   addi r2, r2, -1
        bne  r2, r0, bloop
        addi r16, r16, 4
        addi r17, r17, -1
        bne  r17, r0, wloop
        la   r4, result
        sw   r18, 0(r4)
        halt`, wordsBlock("input", crcInput()), crcLen)
	return asm.MustAssemble(src)
}

// CheckCRC32 verifies against the same algorithm in Go.
func CheckCRC32(s *funcsim.Sim) error {
	crc := ^uint32(0)
	for _, w := range crcInput() {
		crc ^= w
		for b := 0; b < 32; b++ {
			if crc&0x8000_0000 != 0 {
				crc = crc<<1 ^ 0x04C11DB7
			} else {
				crc <<= 1
			}
		}
	}
	got := s.Mem.MustLoad(asm.DataBase + crcLen*4)
	if got != crc {
		return fmt.Errorf("crc = %#x, want %#x", got, crc)
	}
	return nil
}

// helpers

func intSlice(v []uint32) []int32 {
	out := make([]int32, len(v))
	for i, x := range v {
		out[i] = int32(x)
	}
	return out
}

func sortU32(v []uint32) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

func wordsBlock(label string, vals []uint32) string {
	out := label + ":\n"
	for i := 0; i < len(vals); i += 8 {
		end := i + 8
		if end > len(vals) {
			end = len(vals)
		}
		out += "        .word "
		for j := i; j < end; j++ {
			if j > i {
				out += ", "
			}
			out += fmt.Sprint(vals[j])
		}
		out += "\n"
	}
	return out
}

func mustProgram(b *asm.Builder, name string) *isa.Program {
	p, err := b.Program()
	if err != nil {
		panic(fmt.Sprintf("kernels: %s: %v", name, err))
	}
	return p
}
