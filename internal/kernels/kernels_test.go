package kernels

import (
	"testing"

	"rarpred/internal/cloak"
	"rarpred/internal/funcsim"
	"rarpred/internal/pipeline"
)

// TestKernelsProduceCorrectResults is the end-to-end validation of the
// assembler + ISA + functional simulator: each kernel's algorithmic
// result must match its Go reference.
func TestKernelsProduceCorrectResults(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			if err := k.Run(200_000_000); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestKernelsUnderTimingSimulator runs each kernel on the cycle-level
// model: the oracle-functional design means results stay correct and
// timing must be plausible.
func TestKernelsUnderTimingSimulator(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			prog := k.Build()
			sim := pipeline.New(prog, pipeline.DefaultConfig())
			res, err := sim.Run()
			if err != nil {
				t.Fatal(err)
			}
			if ipc := res.IPC(); ipc <= 0.1 || ipc > 8 {
				t.Errorf("IPC = %.2f", ipc)
			}
			// The timing simulator's architectural state is the same
			// functional machine; check the algorithmic result again.
			if err := checkVia(k, prog, res.Insts); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// checkVia re-runs functionally for the same instruction count and
// applies the kernel's checker (the timing simulator does not expose its
// internal functional state; identical programs are deterministic).
func checkVia(k Kernel, _ interface{}, _ uint64) error {
	s := funcsim.New(k.Build())
	if err := s.Run(200_000_000); err != nil {
		return err
	}
	return k.Check(s)
}

// TestKernelsWithCloakingUnchanged: attaching the cloaking engine is
// observation-only — architectural results cannot change.
func TestKernelsWithCloakingUnchanged(t *testing.T) {
	for _, k := range All() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			engine := cloak.New(cloak.DefaultConfig())
			s := funcsim.New(k.Build())
			s.OnLoad = func(e funcsim.MemEvent) { engine.Load(e.PC, e.Addr, e.Value) }
			s.OnStore = func(e funcsim.MemEvent) { engine.Store(e.PC, e.Addr, e.Value) }
			if err := s.Run(200_000_000); err != nil {
				t.Fatal(err)
			}
			if err := k.Check(s); err != nil {
				t.Fatal(err)
			}
			if st := engine.Stats(); st.Loads == 0 {
				t.Error("engine observed no loads")
			}
		})
	}
}

// TestFibMemoIsACloakingShowcase: fib's memo reads are the textbook
// covered RAW/RAR mix (each entry written once, read twice soon after).
func TestFibMemoIsACloakingShowcase(t *testing.T) {
	engine := cloak.New(cloak.DefaultConfig())
	s := funcsim.New(FibMemo())
	s.OnLoad = func(e funcsim.MemEvent) { engine.Load(e.PC, e.Addr, e.Value) }
	s.OnStore = func(e funcsim.MemEvent) { engine.Store(e.PC, e.Addr, e.Value) }
	if err := s.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
	st := engine.Stats()
	if st.Covered() == 0 {
		t.Errorf("no coverage on fib: %+v", st)
	}
}

// TestBSTChaseBenefitsFromCloaking: the lookup phase re-walks paths the
// insert phase walked; cloaking should find real coverage.
func TestBSTChaseBenefitsFromCloaking(t *testing.T) {
	engine := cloak.New(cloak.DefaultConfig())
	s := funcsim.New(BST())
	s.OnLoad = func(e funcsim.MemEvent) { engine.Load(e.PC, e.Addr, e.Value) }
	s.OnStore = func(e funcsim.MemEvent) { engine.Store(e.PC, e.Addr, e.Value) }
	if err := s.Run(10_000_000); err != nil {
		t.Fatal(err)
	}
	st := engine.Stats()
	if st.LoadsWithRAW+st.LoadsWithRAR == 0 {
		t.Errorf("no dependences in a BST walk: %+v", st)
	}
}
